"""The server-system simulator: closed-loop requests on a multicore OS.

This is the substitution for the paper's instrumented Linux kernel running
real server applications.  A closed loop of clients keeps ``concurrency``
requests in flight; request tasks are scheduled over the simulated cores
with per-core runqueues and quanta; between OS-visible events every core
executes its current phase at contention-adjusted rates.  Counter samplers
run at context switches, periodic interrupts, and (optionally) system-call
entrances, paying the observer-effect costs of Table 1.  Completed requests
yield serialized :class:`~repro.kernel.tracker.RequestTrace` timelines.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.hardware.cache import SharedL2Model
from repro.hardware.counters import CounterSnapshot, SamplingContext, SamplingCostModel
from repro.hardware.cpu import CoreState, compute_effective_rates
from repro.hardware.memory import MemoryBusModel
from repro.hardware.platform import WOODCREST, MachineConfig
from repro.kernel.sampling import SamplerStats, SamplingMode, SamplingPolicy
from repro.kernel.scheduler import RoundRobinScheduler, SchedulerPolicy
from repro.kernel.syscalls import next_rate_syscall_cycles
from repro.kernel.task import Task, TaskState
from repro.kernel.tracker import PeriodRecord, RequestTracker
from repro.obs.profiling import active_profiler, profiled_stage
from repro.obs.trace import NULL_COLLECTOR, TraceCollector
from repro.traffic import (
    LatencyStore,
    PoissonArrivals,
    RoundRobinDispatch as RoundRobinDispatchPolicy,
    TrafficConfig,
)
from repro.workloads.base import WorkloadGenerator

_INF = float("inf")

#: Deterministic same-timestamp event ordering.  Events settle by the
#: explicit key ``(time, _EVENT_PRIORITY[kind], core_id)`` — arrivals
#: first (they may make idle cores dispatchable), then phase boundaries,
#: quantum expiries, resched opportunities, interrupts, and rate-based
#: syscalls, with the lowest core id winning inside a kind.  The order is
#: part of the byte-identity surface the golden corpus pins; traffic-layer
#: or event-loop refactors must not change it silently.
_EVENT_PRIORITY = {
    "arrival": 0,
    "phase_end": 1,
    "quantum_end": 2,
    "resched": 3,
    "interrupt": 4,
    "ratecall": 5,
}


@dataclass
class SimConfig:
    """Configuration for one simulation run."""

    machine: MachineConfig = WOODCREST
    cache: SharedL2Model = field(default_factory=SharedL2Model)
    bus: MemoryBusModel = field(default_factory=MemoryBusModel)
    cost_model: SamplingCostModel = field(default_factory=SamplingCostModel)
    sampling: SamplingPolicy = field(default_factory=SamplingPolicy)
    scheduler: Optional[SchedulerPolicy] = None
    #: Closed-loop client count (requests kept in flight).
    concurrency: int = 8
    #: Total requests to complete before the run ends.
    num_requests: int = 100
    seed: int = 0
    #: Subtract the minimum per-sample observer cost from trace counters.
    compensate: bool = True
    #: Cycles to refill the entire shared L2 after a context switch to a
    #: different task (scaled by the incoming phase's footprint).  The paper
    #: measured an extreme worst case above 12 ms; typical footprints make
    #: this far smaller.
    ctx_switch_refill_cycles: float = 4_000_000.0
    #: When set, the run accounts the wall-clock time during which 0..N
    #: cores simultaneously execute above this L2 misses-per-instruction
    #: level (Figure 12's measurement).
    high_usage_mpi_threshold: Optional[float] = None
    #: Distributed deployment (the paper's future work): maps a stage tier
    #: name to the machine (bus domain) hosting it.  Tiers not listed run
    #: on machine 0.  None keeps the single-machine behavior.
    tier_placement: Optional[Dict[str, int]] = None
    #: One-way network latency for a cross-machine stage hand-off.
    network_delay_us: float = 50.0
    #: Legacy open-loop shorthand: when set, requests arrive as a Poisson
    #: process at this rate (``concurrency`` no longer throttles
    #: admissions).  Equivalent to ``traffic`` with
    #: :class:`repro.traffic.PoissonArrivals`; mutually exclusive with it.
    arrival_rate_per_s: Optional[float] = None
    #: Open-system traffic layer: arrival process, dispatch policy, and
    #: bounded-admission backpressure (:class:`repro.traffic.TrafficConfig`).
    #: None — or closed-loop arrivals with round-robin dispatch — is
    #: byte-identical to the paper's closed generative loop.
    traffic: Optional[TrafficConfig] = None
    #: Request-scoped trace collector (None disables tracing; the disabled
    #: fast path is a single attribute check per instrumentation point).
    #: Emission never touches the simulation RNG or any simulated state,
    #: so enabling tracing cannot perturb results.
    collector: Optional[TraceCollector] = None


@dataclass
class SimResult:
    """Everything a simulation run produced."""

    workload_name: str
    config: SimConfig
    traces: list
    sampler_stats: SamplerStats
    scheduler: SchedulerPolicy
    #: Wall cycles during which exactly k cores ran at high usage.
    timeline_cycles: np.ndarray
    wall_cycles: float
    busy_cycles_per_core: np.ndarray
    #: Per-request queueing/sojourn latencies (only for runs with a
    #: configured traffic layer; None for plain closed-loop runs).
    latency: Optional[LatencyStore] = None
    #: Open-loop arrivals refused by the bounded admission queue.
    requests_shed: int = 0

    def high_usage_fractions(self) -> Dict[str, float]:
        """Fraction of wall time with >=2, >=3, and all 4 cores at high usage."""
        total = self.timeline_cycles.sum()
        if total == 0:
            return {">=2": 0.0, ">=3": 0.0, "all": 0.0}
        n = len(self.timeline_cycles) - 1
        return {
            ">=2": float(self.timeline_cycles[2:].sum() / total),
            ">=3": float(self.timeline_cycles[3:].sum() / total) if n >= 3 else 0.0,
            "all": float(self.timeline_cycles[n] / total),
        }

    def request_cpis(self) -> np.ndarray:
        return np.array([t.overall_cpi() for t in self.traces])

    def register_metrics(self, registry) -> None:
        """Fill a :class:`repro.obs.metrics.MetricsRegistry` from this run.

        Counters cover requests and sampling/scheduling activity, gauges
        the run extent, and period-weighted histograms the per-request and
        per-period CPI distributions (the numbers the reports print).
        """
        registry.counter("requests_completed").inc(len(self.traces))
        self.sampler_stats.register_metrics(registry)
        for key, value in sorted(getattr(self.scheduler, "stats", {}).items()):
            registry.counter(f"sched_{key}").inc(int(value))
        registry.gauge("wall_cycles").set(self.wall_cycles)
        registry.gauge("busy_cycles").set(float(self.busy_cycles_per_core.sum()))
        request_cpi = registry.histogram("request_cpi")
        request_cpu = registry.histogram("request_cpu_us")
        period_cpi = registry.histogram("period_cpi")
        for trace in self.traces:
            request_cpi.observe(
                trace.overall_cpi(), weight=trace.total_instructions
            )
            request_cpu.observe(trace.cpu_time_us())
            values, weights = trace.period_values("cpi")
            for value, weight in zip(values, weights):
                period_cpi.observe(float(value), weight=float(weight))
        if self.latency is not None:
            self.latency.register_metrics(registry)


class _CoreRun:
    """Per-core mutable runtime state."""

    __slots__ = (
        "state",
        "task",
        "last_task_id",
        "quantum_end",
        "next_resched",
        "next_interrupt",
        "next_ratecall",
        "last_sample",
        "phase_end",
        "period_start",
        "period_counters",
        "period_inj_ik",
        "period_inj_int",
    )

    def __init__(self, core_id: int):
        self.state = CoreState(core_id=core_id)
        self.task: Optional[Task] = None
        self.last_task_id: Optional[int] = None
        self.quantum_end = _INF
        self.next_resched = _INF
        self.next_interrupt = _INF
        self.next_ratecall = _INF
        self.last_sample = 0.0
        self.phase_end = _INF
        self.period_start = 0.0
        self.period_counters = CounterSnapshot()
        self.period_inj_ik = 0
        self.period_inj_int = 0


class _DispatchView:
    """Read-only queue-state window for dispatch policies."""

    __slots__ = ("_sim",)

    def __init__(self, sim: "ServerSimulator"):
        self._sim = sim

    def queue_depth(self, core_id: int) -> int:
        sim = self._sim
        running = 1 if sim.cores[core_id].task is not None else 0
        return len(sim.runqueues[core_id]) + running

    def outstanding_work(self, core_id: int) -> float:
        sim = self._sim
        total = 0.0
        task = sim.cores[core_id].task
        if task is not None:
            total += task.remaining_in_stage
        for queued in sim.runqueues[core_id]:
            total += queued.remaining_in_stage
        return total


class ServerSimulator:
    """Discrete-event simulation of one workload on the machine.

    Plain constructions route to the structure-of-arrays fast path
    (:class:`repro.kernel.fastpath.FastpathSimulator`) unless
    ``REPRO_SIM_FASTPATH=0`` pins this reference loop — mirroring the
    ``REPRO_DTW_KERNELS`` kill switch.  Both paths are byte-identical;
    the fastpath differential suite and a CI determinism step assert it.
    """

    def __new__(cls, workload=None, config=None):
        if cls is ServerSimulator:
            from repro.kernel.fastpath import FastpathSimulator, fastpath_enabled

            if fastpath_enabled():
                return object.__new__(FastpathSimulator)
        return object.__new__(cls)

    def __init__(self, workload: WorkloadGenerator, config: SimConfig):
        if config.concurrency < 1:
            raise ValueError("concurrency must be at least 1")
        if config.num_requests < 1:
            raise ValueError("num_requests must be at least 1")
        self.workload = workload
        self.config = config
        self.machine = config.machine
        self.policy = config.sampling
        self.scheduler = config.scheduler or RoundRobinScheduler()
        self.rng = np.random.default_rng(config.seed)
        self.obs = config.collector if config.collector is not None else NULL_COLLECTOR
        # Per-kind emission guards, precomputed so a kind-filtered
        # collector skips even the keyword packing on its dense callsites.
        obs = self.obs
        self._trace_phase = obs.enabled and obs.wants("phase_transition")
        self._trace_sample = obs.enabled and obs.wants("sample")
        self._trace_enqueue = obs.enabled and obs.wants("task_enqueued")
        self._trace_dispatch = obs.enabled and obs.wants("task_dispatched")
        self._trace_switch_out = obs.enabled and obs.wants("task_switched_out")
        self._trace_handoff = obs.enabled and obs.wants("stage_handoff")
        self._trace_sched = obs.enabled and (
            obs.wants("sched_avoidance") or obs.wants("sched_preempt")
        )
        self.tracker = RequestTracker(
            cost_model=config.cost_model,
            frequency_ghz=self.machine.frequency_ghz,
            compensate=config.compensate,
            collector=self.obs,
        )
        self.stats = SamplerStats()
        self.now = 0.0
        self.cores = [_CoreRun(i) for i in range(self.machine.num_cores)]
        self.runqueues: List[List[Task]] = [[] for _ in self.cores]
        self.traces: list = []
        self._admitted = 0
        self._completed = 0
        self._shed = 0
        self._next_task_id = 0
        # Traffic layer: arrival process + dispatch policy + latency store.
        # The legacy arrival_rate_per_s shorthand becomes a Poisson process;
        # no traffic config at all keeps the closed loop with the historical
        # round-robin placement (byte-identical, no latency accounting).
        traffic = config.traffic
        if traffic is not None and config.arrival_rate_per_s:
            raise ValueError(
                "set either traffic or arrival_rate_per_s, not both"
            )
        if traffic is None and config.arrival_rate_per_s:
            traffic = TrafficConfig(
                arrivals=PoissonArrivals(config.arrival_rate_per_s)
            )
        self.traffic = traffic
        self._open_loop = traffic is not None and not traffic.arrivals.is_closed_loop
        self._admission_limit = traffic.admission_limit if traffic else None
        self.dispatch_policy = (
            traffic.dispatch if traffic else RoundRobinDispatchPolicy()
        )
        self.dispatch_policy.reset(config.seed)
        self._dispatch_view = _DispatchView(self)
        self.latency = (
            LatencyStore(self.machine.frequency_ghz) if traffic else None
        )
        #: In-flight arrivals: (ready_cycle, seq, spec, stage, tenant) —
        #: cross-machine stage hand-offs (spec set) and open-loop
        #: admissions (spec None).
        self._pending_arrivals: list = []
        self._arrival_seq = 0
        self._network_delay_cycles = self.machine.us_to_cycles(
            config.network_delay_us
        )
        if config.tier_placement:
            for tier, machine_id in config.tier_placement.items():
                if not 0 <= machine_id < self.machine.num_machines:
                    raise ValueError(
                        f"tier {tier!r} placed on machine {machine_id}, but "
                        f"the platform has {self.machine.num_machines}"
                    )
        self._timeline = np.zeros(self.machine.num_cores + 1)
        # Cached cycle conversions.
        self._quantum_cycles = self.machine.us_to_cycles(self.scheduler.quantum_us)
        self._resched_cycles = (
            self.machine.us_to_cycles(self.scheduler.resched_interval_us)
            if self.scheduler.resched_interval_us
            else None
        )
        self._t_syscall_min_cycles = self.machine.us_to_cycles(
            self.policy.t_syscall_min_us
        )
        self._interrupt_cycles = self.machine.us_to_cycles(
            self.policy.interrupt_period_us
        )
        self._backup_cycles = self.machine.us_to_cycles(self.policy.t_backup_int_us)
        #: Ambient stage profiler, captured at run() so per-request
        #: generation time can be attributed out of the simulate stage.
        self._profiler = None
        #: Fault-schedule hooks (duck-typed so plain workloads cost one
        #: getattr at construction, nothing per admission): scheduled
        #: fault wrappers queue activation-window transitions to drain
        #: into the obs stream, and accept the arrival's tenant tag so
        #: tenant-targeted clauses can see it before sampling.
        self._fault_drain = getattr(workload, "drain_fault_events", None)
        self._fault_note_tenant = getattr(workload, "note_tenant", None)

    # ------------------------------------------------------------------ API

    def run(self) -> SimResult:
        self._profiler = active_profiler()
        with profiled_stage("simulate"):
            return self._run()

    def _prepare_generation(self) -> None:
        """Block-ahead synthesis: pre-generate specs when draw-order safe.

        The generation fast path's workloads expose ``prepare_block``,
        which synthesizes the whole run's request specs in one pass ahead
        of simulation.  That reorders no RNG draw as long as nothing else
        draws from ``self.rng`` between admissions: arrival schedules are
        pre-drawn in full (``exposes_schedule``), dispatch policies use
        their own seeded streams, and only syscall-sampling policies draw
        mid-run (rate-based syscall gaps/names) — so those disable it.
        Wrapped workloads (fault injection, fixed-kind) don't expose the
        hook and keep per-request synthesis.
        """
        prepare = getattr(self.workload, "prepare_block", None)
        if prepare is None:
            return
        if self.policy.wants_syscall_events():
            return
        if self.traffic is not None and not getattr(
            self.traffic.arrivals, "exposes_schedule", False
        ):
            return
        with profiled_stage("generate"):
            prepare(self.rng, 0, self.config.num_requests)

    def _run(self) -> SimResult:
        if self.obs.enabled:
            self.obs.emit(
                "run_start",
                self.now,
                workload=self.workload.name,
                scheduler=self.scheduler.describe(),
                sampling=self.policy.mode.value,
                seed=self.config.seed,
                num_requests=self.config.num_requests,
                concurrency=self.config.concurrency,
            )
            if self.traffic is not None:
                self.obs.emit("traffic", self.now, **self.traffic.describe())
        if self._open_loop:
            # Open system: pre-draw the whole arrival schedule, so the
            # run is a pure function of (process, seed).
            for arrival in self.traffic.arrivals.schedule(
                self.rng, self.config.num_requests, self.machine.frequency_ghz
            ):
                self._defer_admission(arrival.cycle, arrival.tenant)
            self._prepare_generation()
        else:
            self._prepare_generation()
            while self._admitted < min(
                self.config.concurrency, self.config.num_requests
            ):
                self._admit()
        for core in range(len(self.cores)):
            self._dispatch(core)
        self._recompute_rates()

        # Shed arrivals count toward run completion: they were offered
        # load that the bounded admission queue refused.
        while self._completed + self._shed < self.config.num_requests:
            t, core_id, kind = self._next_event()
            if t == _INF:
                raise RuntimeError(
                    f"simulation deadlock at cycle {self.now}: "
                    f"{self._completed}/{self.config.num_requests} completed"
                )
            self._account_timeline(t)
            self._advance_all(t)
            self.now = t
            handler = getattr(self, f"_on_{kind}")
            handler(core_id)

        if self.obs.enabled:
            self.obs.emit(
                "run_end",
                self.now,
                completed=self._completed,
                total_samples=self.stats.total_samples,
            )
        return SimResult(
            workload_name=self.workload.name,
            config=self.config,
            traces=self.traces,
            sampler_stats=self.stats,
            scheduler=self.scheduler,
            timeline_cycles=self._timeline,
            wall_cycles=self.now,
            busy_cycles_per_core=np.array([c.state.busy_cycles for c in self.cores]),
            latency=self.latency,
            requests_shed=self._shed,
        )

    # ----------------------------------------------------------- event loop

    def _next_event(self):
        """The earliest pending event as ``(time, core_id, kind)``.

        Same-timestamp events settle by the explicit, documented key
        ``(time, _EVENT_PRIORITY[kind], core_id)`` — never by core scan
        order or float-comparison asymmetries — so the event sequence is
        stable under event-loop and traffic-layer refactors.
        """
        best = (_INF, 6, -1, "none")
        if self._pending_arrivals:
            best = (self._pending_arrivals[0][0], _EVENT_PRIORITY["arrival"],
                    -1, "arrival")
        for core in self.cores:
            if core.task is None:
                continue
            cid = core.state.core_id
            for t, kind in (
                (core.phase_end, "phase_end"),
                (core.quantum_end, "quantum_end"),
                (core.next_resched, "resched"),
                (core.next_interrupt, "interrupt"),
                (core.next_ratecall, "ratecall"),
            ):
                if t < _INF:
                    key = (t, _EVENT_PRIORITY[kind], cid)
                    if key < best[:3]:
                        best = (t, key[1], cid, kind)
        return best[0], best[2], best[3]

    def _account_timeline(self, t: float) -> None:
        if self.config.high_usage_mpi_threshold is None:
            return
        threshold = self.config.high_usage_mpi_threshold
        count = 0
        for core in self.cores:
            rates = core.state.rates
            if rates is None:
                continue
            if rates.l2_refs_per_ins * rates.l2_miss_ratio > threshold:
                count += 1
        self._timeline[count] += t - self.now

    def _advance_all(self, t: float) -> None:
        for core in self.cores:
            delta = core.state.advance(t)
            if core.task is not None and delta.instructions > 0:
                core.period_counters = core.period_counters + delta
                core.task.advance_instructions(delta.instructions)

    # ------------------------------------------------------- event handlers

    def _on_phase_end(self, core_id: int) -> None:
        core = self.cores[core_id]
        task = core.task
        # Snap to the exact phase boundary (float drift from rate changes).
        task.instructions_done_in_phase = float(task.current_phase.instructions)

        if not task.on_last_phase:
            next_phase = task.stage.phases[task.phase_index + 1]
            name = next_phase.entry_syscall
            if name is not None:
                self.tracker.record_syscall(task.request_id, self.now, name)
                if self.policy.accepts_trigger(name) and (
                    self.now - core.last_sample >= self._t_syscall_min_cycles
                ):
                    self._sample(core, SamplingContext.IN_KERNEL)
            task.enter_next_phase()
            if self._trace_phase:
                self.obs.emit(
                    "phase_transition",
                    self.now,
                    request_id=task.request_id,
                    task_id=task.task_id,
                    core=core_id,
                    stage=task.stage_index,
                    phase=task.phase_index,
                    entry_syscall=name,
                )
            self._recompute_rates()
            return

        if not task.on_last_stage:
            self._hand_off_stage(core, task)
        else:
            self._complete_request(core, task)
        self._dispatch(core_id)
        self._recompute_rates()

    def _on_quantum_end(self, core_id: int) -> None:
        core = self.cores[core_id]
        task = core.task
        self._switch_out(core, SamplingContext.IN_KERNEL)
        self.runqueues[core_id].append(task)  # round-robin: requeue at tail
        self._dispatch(core_id)
        self._recompute_rates()

    def _on_resched(self, core_id: int) -> None:
        core = self.cores[core_id]
        current = core.task
        running = {c.state.core_id: c.task for c in self.cores}
        idx = self.scheduler.should_preempt(
            core_id, current, self.runqueues[core_id], running
        )
        if idx is None:
            core.next_resched = self.now + self._resched_cycles
            return
        incoming = self.runqueues[core_id].pop(idx)
        if self._trace_sched:
            self.obs.emit(
                "sched_preempt",
                self.now,
                request_id=incoming.request_id,
                task_id=incoming.task_id,
                core=core_id,
                preempted_request_id=current.request_id,
                preempted_task_id=current.task_id,
            )
        self._switch_out(core, SamplingContext.IN_KERNEL)
        # Keep the preempted request at the head so it resumes first.
        self.runqueues[core_id].insert(0, current)
        self._switch_in(core, incoming)
        self._recompute_rates()

    def _on_interrupt(self, core_id: int) -> None:
        self._sample(self.cores[core_id], SamplingContext.INTERRUPT)

    def _on_ratecall(self, core_id: int) -> None:
        core = self.cores[core_id]
        phase = core.task.current_phase
        name = phase.syscall_pool[int(self.rng.integers(len(phase.syscall_pool)))]
        if self.policy.accepts_trigger(name):
            self._sample(core, SamplingContext.IN_KERNEL)
        else:
            self._reset_ratecall(core)

    # ------------------------------------------------------- request admin

    def _admit(self, tenant: Optional[int] = None) -> None:
        profiler = self._profiler
        if self._fault_note_tenant is not None:
            self._fault_note_tenant(tenant)
        if profiler is None:
            spec = self.workload.sample_request(self.rng, self._admitted)
        else:
            start = time.perf_counter()
            spec = self.workload.sample_request(self.rng, self._admitted)
            profiler.add("generate", time.perf_counter() - start)
        self._admitted += 1
        if self._fault_drain is not None:
            for transition in self._fault_drain():
                if self.obs.enabled:
                    self.obs.emit(
                        transition["kind"],
                        self.now,
                        request_id=transition["request_id"],
                        clause=transition["clause"],
                        fault=transition["fault"],
                        window_lo=transition["window_lo"],
                        window_hi=transition["window_hi"],
                    )
        if tenant is not None:
            spec.metadata["tenant"] = tenant
        self.tracker.start_request(spec, self.now)
        if self.latency is not None:
            self.latency.on_arrival(
                spec.request_id, spec.kind, self.now, tenant=tenant
            )
        if self.obs.enabled:
            self.obs.emit(
                "request_admitted",
                self.now,
                request_id=spec.request_id,
                app=spec.app,
                request_kind=spec.kind,
                total_instructions=int(spec.total_instructions),
                injected_fault=spec.metadata.get("injected_fault"),
            )
        self._enqueue_stage(spec, stage_index=0)

    def _shed_arrival(self, tenant: Optional[int]) -> None:
        """Refuse one open-loop arrival at the bounded admission queue."""
        self._shed += 1
        if self.latency is not None:
            self.latency.on_shed(self.now)
        if self.obs.enabled:
            self.obs.emit(
                "request_shed",
                self.now,
                in_flight=self._admitted - self._completed,
                admission_limit=self._admission_limit,
                tenant=tenant,
            )

    def _on_arrival(self, core_id: int) -> None:
        # Heap timestamps compare exactly: an event's batch is everything
        # scheduled at the very same float cycle.  (The old absolute 1e-9
        # epsilon fell below float spacing at large cycle counts, making
        # batch membership — and hence _recompute_rates timing — depend on
        # the run's time magnitude.)
        while self._pending_arrivals and (
            self._pending_arrivals[0][0] <= self.now
        ):
            _, _, spec, stage_index, tenant = heapq.heappop(
                self._pending_arrivals
            )
            if spec is None:
                if (
                    self._admission_limit is not None
                    and self._admitted - self._completed >= self._admission_limit
                ):
                    self._shed_arrival(tenant)
                else:
                    self._admit(tenant)
            else:
                self._enqueue_stage(spec, stage_index)
        self._recompute_rates()

    def _machine_of_tier(self, tier: str) -> int:
        if not self.config.tier_placement:
            return 0
        return self.config.tier_placement.get(tier, 0)

    def _enqueue_stage(self, spec, stage_index: int) -> None:
        tier = spec.stages[stage_index].tier
        machine_id = self._machine_of_tier(tier)
        machine_cores = self.machine.machine_cores(machine_id)
        core_id = self.dispatch_policy.choose(
            machine_id, machine_cores, spec, stage_index, self._dispatch_view
        )
        if core_id not in machine_cores:
            raise ValueError(
                f"dispatch policy {self.dispatch_policy.name!r} placed "
                f"stage {stage_index} on core {core_id}, not one of "
                f"machine {machine_id}'s cores {tuple(machine_cores)}"
            )
        task = Task(
            task_id=self._next_task_id,
            request=spec,
            stage_index=stage_index,
            home_core=core_id,
            enqueue_cycle=self.now,
        )
        self._next_task_id += 1
        if self._trace_enqueue:
            self.obs.emit(
                "task_enqueued",
                self.now,
                request_id=spec.request_id,
                task_id=task.task_id,
                core=core_id,
                stage=stage_index,
                tier=tier,
            )
        self.runqueues[core_id].append(task)
        if self.cores[core_id].task is None:
            self._dispatch(core_id)

    def _defer_stage(self, spec, stage_index: int, ready_cycle: float) -> None:
        """Queue a stage arrival after a network hand-off delay."""
        heapq.heappush(
            self._pending_arrivals,
            (ready_cycle, self._arrival_seq, spec, stage_index, None),
        )
        self._arrival_seq += 1

    def _defer_admission(
        self, ready_cycle: float, tenant: Optional[int] = None
    ) -> None:
        """Schedule an open-loop request admission."""
        heapq.heappush(
            self._pending_arrivals,
            (ready_cycle, self._arrival_seq, None, 0, tenant),
        )
        self._arrival_seq += 1

    def _hand_off_stage(self, core: _CoreRun, task: Task) -> None:
        """Request propagates to the next tier through socket operations."""
        self._switch_out(core, SamplingContext.IN_KERNEL)
        task.state = TaskState.DONE
        self.tracker.record_syscall(task.request_id, self.now, "write")
        self.tracker.record_syscall(task.request_id, self.now, "read")
        next_stage = task.stage_index + 1
        source = self.machine.bus_domain_of(core.state.core_id)
        target = self._machine_of_tier(task.request.stages[next_stage].tier)
        if self._trace_handoff:
            self.obs.emit(
                "stage_handoff",
                self.now,
                request_id=task.request_id,
                task_id=task.task_id,
                core=core.state.core_id,
                next_stage=next_stage,
                target_machine=target,
                cross_machine=target != source,
            )
        if target != source:
            self._defer_stage(
                task.request, next_stage, self.now + self._network_delay_cycles
            )
        else:
            self._enqueue_stage(task.request, next_stage)

    def _complete_request(self, core: _CoreRun, task: Task) -> None:
        self._switch_out(core, SamplingContext.IN_KERNEL)
        task.state = TaskState.DONE
        trace = self.tracker.finish_request(task.request_id, self.now)
        self.traces.append(trace)
        self._completed += 1
        if self.latency is not None:
            self.latency.on_complete(task.request_id, self.now)
        self.dispatch_policy.observe_completion(
            task.request.kind, trace.cpu_time_us()
        )
        if self.obs.enabled:
            self.obs.emit(
                "request_completed",
                self.now,
                request_id=task.request_id,
                task_id=task.task_id,
                core=core.state.core_id,
                periods=trace.num_periods,
            )
        if not self._open_loop and self._admitted < self.config.num_requests:
            self._admit()

    # --------------------------------------------------------- dispatching

    def _dispatch(self, core_id: int) -> None:
        core = self.cores[core_id]
        if core.task is not None:
            return
        running = {c.state.core_id: c.task for c in self.cores}
        idx = self.scheduler.pick(core_id, self.runqueues[core_id], running)
        if idx is None:
            self._clear_core(core)
            return
        task = self.runqueues[core_id].pop(idx)
        if idx != 0 and self._trace_sched:
            # A non-head pick is a contention-easing avoidance decision.
            self.obs.emit(
                "sched_avoidance",
                self.now,
                request_id=task.request_id,
                task_id=task.task_id,
                core=core_id,
                queue_index=idx,
            )
        self._switch_in(core, task)

    def _clear_core(self, core: _CoreRun) -> None:
        core.state.set_rates(None)
        core.phase_end = _INF
        core.quantum_end = _INF
        core.next_resched = _INF
        core.next_interrupt = _INF
        core.next_ratecall = _INF

    def _switch_in(self, core: _CoreRun, task: Task) -> None:
        if self._trace_dispatch:
            self.obs.emit(
                "task_dispatched",
                self.now,
                request_id=task.request_id,
                task_id=task.task_id,
                core=core.state.core_id,
                stage=task.stage_index,
                phase=task.phase_index,
            )
        if (
            self.latency is not None
            and task.stage_index == 0
            and not task.has_started
        ):
            self.latency.on_start(task.request_id, self.now)
        task.state = TaskState.RUNNING
        core.task = task
        core.period_start = self.now
        core.period_counters = CounterSnapshot()
        core.period_inj_ik = 0
        core.period_inj_int = 0
        core.last_sample = self.now
        core.quantum_end = self.now + self._quantum_cycles
        core.next_resched = (
            self.now + self._resched_cycles if self._resched_cycles else _INF
        )

        phase = task.current_phase
        # First dispatch of a stage records its opening syscall.
        if task.phase_index == 0 and task.instructions_done_in_phase == 0:
            if phase.entry_syscall is not None:
                self.tracker.record_syscall(
                    task.request_id, self.now, phase.entry_syscall
                )

        # The switch itself samples the counters in-kernel (mandatory for
        # attribution) and the incoming task pays cache-refill pollution if
        # the core last ran someone else.
        cost = self.config.cost_model.cost(
            SamplingContext.IN_KERNEL, phase.behavior.cache_footprint
        )
        self.stats.record(SamplingContext.IN_KERNEL, mandatory=True)
        # A resuming task whose core ran someone else in between finds its
        # cached state evicted and pays a footprint-scaled refill transient
        # (the context-switch cache pollution of Section 5.2).  The refill
        # is not an instantaneous lump: the task keeps retiring phase
        # instructions at roughly doubled CPI while its lines stream back,
        # so the injected counters carry matching instruction progress.
        if task.has_started and core.last_task_id != task.task_id:
            behavior = phase.behavior
            footprint = behavior.cache_footprint
            refill_cycles = footprint * self.config.ctx_switch_refill_cycles
            transient_cpi = 2.0 * behavior.solo_cpi(
                self.machine.l2_miss_penalty_cycles
            )
            instructions = min(
                refill_cycles / transient_cpi, 0.9 * task.remaining_in_phase
            )
            refill_cycles = instructions * transient_cpi
            lines = footprint * (
                self.machine.l2_size_kb * 1024 / self.machine.l2_line_bytes
            )
            cost = cost + CounterSnapshot(
                cycles=refill_cycles,
                instructions=instructions,
                l2_refs=lines,
                l2_misses=lines,
            )
            task.advance_instructions(instructions)
        task.has_started = True
        core.state.inject(cost)
        core.period_counters = core.period_counters + cost
        core.period_inj_ik += 1
        core.last_task_id = task.task_id

        self._reset_sampler_timers(core)

    def _switch_out(self, core: _CoreRun, context: SamplingContext) -> None:
        """Flush the running task's period and free the core."""
        task = core.task
        if task is None:
            raise RuntimeError("switch_out on idle core")
        if self._trace_switch_out:
            self.obs.emit(
                "task_switched_out",
                self.now,
                request_id=task.request_id,
                task_id=task.task_id,
                core=core.state.core_id,
                context=context.value if context is not None else None,
            )
        self._flush_period(core, context)
        task.state = TaskState.READY
        core.task = None
        core.state.set_rates(None)
        self._clear_core(core)

    # ------------------------------------------------------------ sampling

    def _flush_period(self, core: _CoreRun, context: Optional[SamplingContext]) -> None:
        counters = core.period_counters
        self.scheduler.on_sample(
            core.task, counters.instructions, counters.l2_misses, counters.cycles
        )
        self.tracker.close_period(
            core.task.request_id,
            PeriodRecord(
                start_cycle=core.period_start,
                end_cycle=self.now,
                core=core.state.core_id,
                counters=counters,
                injected_in_kernel=core.period_inj_ik,
                injected_interrupt=core.period_inj_int,
                closing_context=context,
            ),
        )
        core.period_start = self.now
        core.period_counters = CounterSnapshot()
        core.period_inj_ik = 0
        core.period_inj_int = 0

    def _sample(self, core: _CoreRun, context: SamplingContext) -> None:
        """Take one counter sample on a busy core (non-mandatory)."""
        task = core.task
        if self._trace_sample:
            self.obs.emit(
                "sample",
                self.now,
                request_id=task.request_id,
                task_id=task.task_id,
                core=core.state.core_id,
                context=context.value,
            )
        self._flush_period(core, context)
        self.stats.record(context, mandatory=False)
        cost = self.config.cost_model.cost(
            context, task.current_phase.behavior.cache_footprint
        )
        core.state.inject(cost)
        core.period_counters = core.period_counters + cost
        if context is SamplingContext.IN_KERNEL:
            core.period_inj_ik += 1
        else:
            core.period_inj_int += 1
        core.last_sample = self.now
        self._reset_sampler_timers(core)
        self._update_core_timers(core)

    def _reset_sampler_timers(self, core: _CoreRun) -> None:
        mode = self.policy.mode
        if mode is SamplingMode.INTERRUPT:
            core.next_interrupt = self.now + self._interrupt_cycles
        elif self.policy.wants_syscall_events():
            core.next_interrupt = self.now + self._backup_cycles
        else:
            core.next_interrupt = _INF

    # ------------------------------------------------------------- rates

    def _recompute_rates(self) -> None:
        behaviors = {
            c.state.core_id: c.task.current_phase.behavior
            for c in self.cores
            if c.task is not None
        }
        rates = compute_effective_rates(
            self.machine, self.config.cache, self.config.bus, behaviors
        )
        for core in self.cores:
            cid = core.state.core_id
            if cid in rates:
                core.state.set_rates(rates[cid])
                self._update_core_timers(core)
            elif core.task is None:
                core.state.set_rates(None)

    def _update_core_timers(self, core: _CoreRun) -> None:
        """Recompute phase-end and lazy-syscall timers from current rates."""
        task = core.task
        rates = core.state.rates
        if task is None or rates is None:
            return
        remaining = task.remaining_in_phase
        core.phase_end = core.state.last_advance_cycle + remaining * rates.cpi
        self._reset_ratecall(core)

    def _reset_ratecall(self, core: _CoreRun) -> None:
        if not self.policy.wants_syscall_events():
            core.next_ratecall = _INF
            return
        phase = core.task.current_phase
        if phase.syscall_rate_per_ins <= 0:
            core.next_ratecall = _INF
            return
        # The earliest instant a rate-based syscall could trigger a sample;
        # by exponential memorylessness the next call after that instant is
        # one fresh draw away.
        earliest = max(
            core.state.last_advance_cycle,
            core.last_sample + self._t_syscall_min_cycles,
        )
        delay = next_rate_syscall_cycles(
            self.rng, phase.syscall_rate_per_ins, core.state.rates.cpi
        )
        core.next_ratecall = earliest + delay


def run_workload(workload, config: Optional[SimConfig] = None, **overrides) -> SimResult:
    """Convenience wrapper: simulate a workload and return the result.

    ``workload`` may be a generator instance or a registered name.
    Keyword overrides are applied on top of ``config`` (or a default one).
    """
    from repro.workloads.registry import make_workload

    if isinstance(workload, str):
        workload = make_workload(workload)
    if config is None:
        config = SimConfig()
    if overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    return ServerSimulator(workload, config).run()
