"""Discrete-event operating-system simulator.

This package substitutes the paper's instrumented Linux 2.6.18 kernel: it
schedules request tasks over the simulated multicore, generates the
OS-visible event stream (context switches, system-call entries, APIC-style
interrupts), runs the paper's counter-sampling techniques at those events,
tracks request contexts across tier hand-offs, and serializes per-request
counter timelines.
"""

from repro.kernel.contention import ContentionEasingScheduler
from repro.kernel.fastpath import (
    FASTPATH_ENV,
    FastpathSimulator,
    ReferenceSimulator,
    fastpath_enabled,
)
from repro.kernel.sampling import SamplerStats, SamplingMode, SamplingPolicy
from repro.kernel.scheduler import RoundRobinScheduler, SchedulerPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig, SimResult, run_workload
from repro.kernel.task import Task, TaskState
from repro.kernel.tracker import PeriodRecord, RequestTrace, RequestTracker

__all__ = [
    "ContentionEasingScheduler",
    "FASTPATH_ENV",
    "FastpathSimulator",
    "ReferenceSimulator",
    "fastpath_enabled",
    "PeriodRecord",
    "RequestTrace",
    "RequestTracker",
    "RoundRobinScheduler",
    "SamplerStats",
    "SamplingMode",
    "SamplingPolicy",
    "SchedulerPolicy",
    "ServerSimulator",
    "SimConfig",
    "SimResult",
    "Task",
    "TaskState",
    "run_workload",
]
