"""The simulator fast path: SoA deadline calendar + batched event loop.

:class:`FastpathSimulator` restructures the hot path of
:class:`~repro.kernel.simulator.ServerSimulator` for raw requests/sec while
producing **byte-identical** output — every IEEE-754 operation and every
RNG draw happens in exactly the same order as the reference loop, so golden
corpora, canonical JSONL exports, metrics snapshots, and latency rows match
bit for bit.  The restructurings:

* **structure-of-arrays deadline calendar** — the five per-core event
  timers (phase end, quantum expiry, resched opportunity, interrupt,
  rate-based syscall) live in one ``(5, num_cores)`` numpy matrix whose
  rows are ordered by the documented event priority.  ``_next_event`` is a
  single vectorized ``argmin`` over the C-order flattened matrix: among
  ties of the minimum time, ``argmin`` returns the first occurrence, i.e.
  the smallest ``(kind_priority, core_id)`` — exactly the reference loop's
  pinned ``(time, kind_priority, core_id)`` tie-break.  Arrivals (priority
  0) win ties against every core event via a ``<=`` head check, matching
  the reference scan that seeds its best with the arrival and requires
  core events to beat it strictly.
* **scalar per-core accumulators** — period and total counters accumulate
  as four plain floats per core instead of chained frozen
  ``CounterSnapshot`` allocations.  A left-fold of per-field scalar adds
  performs the identical operation sequence, so the flushed
  :class:`~repro.kernel.tracker.PeriodRecord` counters are bit-identical.
* **batched event application** — runs of sampler events (interrupt
  samples, rate-based syscalls) cannot change dispatch, completion, or
  shedding state, so the inner loop drains them without re-entering the
  outer run-completion bookkeeping.  True arithmetic merging of event
  batches is impossible under byte-identity (every event must advance
  every busy core at its own timestamp, in order), so the batching is
  control-flow elision, not arithmetic fusion — see ``docs/perf.md``.
* **memoized pure kernels** — contention rate sets
  (:func:`~repro.hardware.cpu.compute_effective_rates`) and sampling cost
  snapshots are pure functions of hashable inputs; both are memoized per
  run with bounded caches.  Timer resets and RNG draws still run on every
  recompute — only the *values* are cached, never the side effects.

``REPRO_SIM_FASTPATH=0`` in the environment routes plain
``ServerSimulator(...)`` constructions back to the reference loop
(mirroring the ``REPRO_DTW_KERNELS`` kill switch); results are identical
either way — the toggle exists so CI can assert exactly that.
"""

from __future__ import annotations

import os

import numpy as np

from repro.hardware.cache import phase_pressure
from repro.hardware.counters import CounterSnapshot, SamplingContext
from repro.hardware.cpu import EffectiveRates
from repro.kernel.sampling import SamplingMode
from repro.kernel.scheduler import SchedulerPolicy
from repro.kernel.simulator import (
    _INF,
    SimResult,
    ServerSimulator,
    _CoreRun,
)
from repro.kernel.syscalls import next_rate_syscall_cycles
from repro.kernel.task import TaskState
from repro.kernel.tracker import PeriodRecord

FASTPATH_ENV = "REPRO_SIM_FASTPATH"

#: Calendar rows in event-priority order; row index = priority - 1
#: (arrivals, priority 0, live in the pending-arrival heap instead).
_CALENDAR_KINDS = ("phase_end", "quantum_end", "resched", "interrupt", "ratecall")
_ROW_PHASE = 0
_ROW_QUANTUM = 1
_ROW_RESCHED = 2
_ROW_INTERRUPT = 3
_ROW_RATECALL = 4

#: Bounded memo sizes (cleared on overflow, never evicted piecemeal).
_MEMO_CAP = 4096
#: Distinct whole-run rate keys tolerated with zero hits before the
#: rates memo concludes behavior sets never recur and turns itself off.
_RATES_MEMO_PROBATION = 256


def fastpath_enabled() -> bool:
    """Whether plain constructions route to the fast path.

    Read at construction time, so tests can flip the environment
    per-simulator.  ``REPRO_SIM_FASTPATH=0`` disables; anything else
    (including unset) enables.
    """
    return os.environ.get(FASTPATH_ENV, "1") != "0"


class _FastCoreRun(_CoreRun):
    """Per-core state whose event timers live in the shared calendar.

    The five timer attributes of :class:`_CoreRun` become properties over
    one column of the simulator's ``(5, num_cores)`` deadline matrix, so
    base-class handlers (and tests that poke ``sim.cores[i].phase_end``)
    stay transparently in sync with the vectorized ``_next_event``.
    Period and total counters accumulate as plain floats; the
    ``period_counters`` property materializes a snapshot on demand.
    """

    __slots__ = (
        "cid",
        "_dl",
        "phases",
        "pc_cycles",
        "pc_instructions",
        "pc_l2_refs",
        "pc_l2_misses",
        "tot_cycles",
        "tot_instructions",
        "tot_l2_refs",
        "tot_l2_misses",
        "periods_sink",
        "adv",
        "busy",
        "rx",
    )

    def __init__(self, core_id: int, deadlines: np.ndarray):
        # The calendar column must exist before _CoreRun.__init__ assigns
        # the timer attributes (those writes go through the properties).
        self.cid = core_id
        self._dl = deadlines
        self.periods_sink = None
        # Current stage's phase tuple, set at _switch_in and cleared with
        # the core: replaces the request.stages[i].phases[j] chain on the
        # per-event hot sites.  Sound because core.task is only assigned
        # in _switch_in (stage hand-offs create fresh tasks) and
        # enter_next_phase never leaves the stage.
        self.phases = None
        # Slot mirrors of CoreState.last_advance_cycle / busy_cycles /
        # rates: every mutation site is overridden here, so the mirrors
        # are authoritative during the run and synced back to the shared
        # CoreState when _run finishes (dataclass dict lookups are
        # measurable at per-event frequency).
        self.adv = 0.0
        self.busy = 0.0
        self.rx = None
        self.pc_cycles = 0.0
        self.pc_instructions = 0.0
        self.pc_l2_refs = 0.0
        self.pc_l2_misses = 0.0
        self.tot_cycles = 0.0
        self.tot_instructions = 0.0
        self.tot_l2_refs = 0.0
        self.tot_l2_misses = 0.0
        super().__init__(core_id)

    # Timer properties shadow the base-class slots; getters return plain
    # floats so values never leak numpy scalars into serialized output.

    @property
    def phase_end(self):
        return float(self._dl[_ROW_PHASE, self.cid])

    @phase_end.setter
    def phase_end(self, value):
        self._dl[_ROW_PHASE, self.cid] = value

    @property
    def quantum_end(self):
        return float(self._dl[_ROW_QUANTUM, self.cid])

    @quantum_end.setter
    def quantum_end(self, value):
        self._dl[_ROW_QUANTUM, self.cid] = value

    @property
    def next_resched(self):
        return float(self._dl[_ROW_RESCHED, self.cid])

    @next_resched.setter
    def next_resched(self, value):
        self._dl[_ROW_RESCHED, self.cid] = value

    @property
    def next_interrupt(self):
        return float(self._dl[_ROW_INTERRUPT, self.cid])

    @next_interrupt.setter
    def next_interrupt(self, value):
        self._dl[_ROW_INTERRUPT, self.cid] = value

    @property
    def next_ratecall(self):
        return float(self._dl[_ROW_RATECALL, self.cid])

    @next_ratecall.setter
    def next_ratecall(self, value):
        self._dl[_ROW_RATECALL, self.cid] = value

    @property
    def period_counters(self):
        return CounterSnapshot(
            cycles=self.pc_cycles,
            instructions=self.pc_instructions,
            l2_refs=self.pc_l2_refs,
            l2_misses=self.pc_l2_misses,
        )

    @period_counters.setter
    def period_counters(self, value):
        self.pc_cycles = value.cycles
        self.pc_instructions = value.instructions
        self.pc_l2_refs = value.l2_refs
        self.pc_l2_misses = value.l2_misses


class FastpathSimulator(ServerSimulator):
    """SoA/calendar restructuring of the reference event loop.

    Only data-structure plumbing is overridden; every scheduling,
    dispatch, hand-off, and completion decision stays in the base class,
    operating through the timer properties and overridden helpers.  The
    differential suite (``tests/kernel/test_fastpath_differential.py``)
    asserts byte-identity against :class:`ReferenceSimulator` across the
    workload x sampling x traffic grid.
    """

    def __init__(self, workload, config):
        super().__init__(workload, config)
        ncores = self.machine.num_cores
        deadlines = np.full((5, ncores), _INF)
        self._dl = deadlines
        self._dl_flat = deadlines.reshape(-1)
        self._ncores = ncores
        self.cores = [_FastCoreRun(i, deadlines) for i in range(ncores)]
        self._rates_memo = {}
        # Whole-key rate memoization only pays when behavior sets recur
        # (mbench's constant behaviors).  Jittered server phases make
        # every key unique, so the per-event key build, probe, store, and
        # periodic clears are pure overhead there: workloads declare that
        # via ``jittered_behaviors``, and unlabeled workloads fall back
        # to a runtime probation (_RATES_MEMO_PROBATION distinct keys
        # with zero hits turns the memo off for good).  Purely a caching
        # decision: rates are recomputed identically either way.
        self._rates_memo_enabled = not getattr(
            workload, "jittered_behaviors", False
        )
        self._rates_memo_hits = 0
        self._pressure_memo = {}
        self._contention_memo = {}
        self._cost_memo_ik = {}
        self._cost_memo_int = {}
        self._miss_penalty = self.machine.l2_miss_penalty_cycles
        self._l2_peers = [self.machine.l2_peers_of(i) for i in range(ncores)]
        self._bus_domains = [self.machine.bus_domain_of(i) for i in range(ncores)]
        bus = self.config.bus
        self._bus_gamma = bus.contention_gamma
        self._bus_beta = bus.contention_beta
        self._bus_occ_clamp = (bus.machine_cores - 1) * bus.max_occupancy
        # The base scheduler hook is a documented no-op; skipping the call
        # for policies that don't override it keeps the flush path lean.
        self._scheduler_samples = (
            type(self.scheduler).on_sample is not SchedulerPolicy.on_sample
        )
        self._accepts_trigger = self.policy.trigger_acceptor()
        self._wants_syscall = self.policy.wants_syscall_events()
        self._argmin = self._dl_flat.argmin
        # Direct period appends bypass close_period's per-sample lookup;
        # only safe when no period_sample observer needs the emission.
        self._direct_periods = not self.tracker.emits_period_samples
        if self.policy.mode is SamplingMode.INTERRUPT:
            self._sampler_delay = self._interrupt_cycles
        elif self._wants_syscall:
            self._sampler_delay = self._backup_cycles
        else:
            self._sampler_delay = None

    # ----------------------------------------------------------- event loop

    def _run(self) -> SimResult:
        if self.obs.enabled:
            self.obs.emit(
                "run_start",
                self.now,
                workload=self.workload.name,
                scheduler=self.scheduler.describe(),
                sampling=self.policy.mode.value,
                seed=self.config.seed,
                num_requests=self.config.num_requests,
                concurrency=self.config.concurrency,
            )
            if self.traffic is not None:
                self.obs.emit("traffic", self.now, **self.traffic.describe())
        if self._open_loop:
            for arrival in self.traffic.arrivals.schedule(
                self.rng, self.config.num_requests, self.machine.frequency_ghz
            ):
                self._defer_admission(arrival.cycle, arrival.tenant)
            self._prepare_generation()
        else:
            self._prepare_generation()
            while self._admitted < min(
                self.config.concurrency, self.config.num_requests
            ):
                self._admit()
        for core in range(len(self.cores)):
            self._dispatch(core)
        self._recompute_rates()

        handlers = {
            "arrival": self._on_arrival,
            "phase_end": self._on_phase_end,
            "quantum_end": self._on_quantum_end,
            "resched": self._on_resched,
            "interrupt": self._on_interrupt,
            "ratecall": self._on_ratecall,
        }
        account = self.config.high_usage_mpi_threshold is not None
        num = self.config.num_requests
        next_event = self._next_event
        advance_all = self._advance_all
        sample = self._sample
        cores = self.cores
        interrupt_ctx = SamplingContext.INTERRUPT
        while self._completed + self._shed < num:
            t, core_id, kind = next_event()
            # Batched application: sampler events (interrupts, rate-based
            # syscalls) cannot complete, shed, or redispatch anything, so
            # runs of them drain here without re-testing run completion.
            # Interrupts — the densest kind — skip the handler hop too.
            while True:
                if t == _INF:
                    raise RuntimeError(
                        f"simulation deadlock at cycle {self.now}: "
                        f"{self._completed}/{self.config.num_requests} completed"
                    )
                if account:
                    self._account_timeline(t)
                # Same-timestamp events need no advance: cores were already
                # advanced to t by the previous event at t, and injections
                # only ever move core.adv forward past it.
                if t != self.now:
                    advance_all(t)
                    self.now = t
                if kind == "interrupt":
                    sample(cores[core_id], interrupt_ctx)
                    t, core_id, kind = next_event()
                    continue
                if kind == "phase_end":
                    self._on_phase_end(core_id)
                    break
                handlers[kind](core_id)
                if kind == "ratecall":
                    t, core_id, kind = next_event()
                    continue
                break

        for core in self.cores:
            state = core.state
            state.total = CounterSnapshot(
                cycles=core.tot_cycles,
                instructions=core.tot_instructions,
                l2_refs=core.tot_l2_refs,
                l2_misses=core.tot_l2_misses,
            )
            state.last_advance_cycle = core.adv
            state.busy_cycles = core.busy
        if self.obs.enabled:
            self.obs.emit(
                "run_end",
                self.now,
                completed=self._completed,
                total_samples=self.stats.total_samples,
            )
        return SimResult(
            workload_name=self.workload.name,
            config=self.config,
            traces=self.traces,
            sampler_stats=self.stats,
            scheduler=self.scheduler,
            timeline_cycles=self._timeline,
            wall_cycles=self.now,
            busy_cycles_per_core=np.array([c.state.busy_cycles for c in self.cores]),
            latency=self.latency,
            requests_shed=self._shed,
        )

    def _next_event(self):
        """Vectorized argmin over the deadline calendar.

        The matrix rows are ordered by event priority and the flatten is
        C-order, so among equal minimum times ``argmin``'s
        first-occurrence rule picks the smallest ``(priority, core_id)``
        — the reference loop's exact ``(time, kind_priority, core_id)``
        key.  Idle cores hold ``inf`` in every row (maintained by
        ``_clear_core``), so they never win.  An arrival at the same
        timestamp beats every core event (priority 0 via ``<=``).
        """
        index = int(self._argmin())
        t = self._dl_flat[index]
        pending = self._pending_arrivals
        if pending and pending[0][0] <= t:
            return pending[0][0], -1, "arrival"
        if t == _INF:
            return _INF, -1, "none"
        row = index // self._ncores
        return float(t), index - row * self._ncores, _CALENDAR_KINDS[row]

    def _advance_all(self, t: float) -> None:
        # Scalar transcription of CoreState.advance + the period/task
        # bookkeeping: identical per-field operation order, no frozen
        # snapshot allocations on the hot path.
        for core in self.cores:
            elapsed = t - core.adv
            if elapsed <= 0.0:
                continue
            core.adv = t
            rates = core.rx
            if rates is None:
                continue
            instructions = elapsed / rates.cpi
            refs = instructions * rates.l2_refs_per_ins
            misses = refs * rates.l2_miss_ratio
            core.tot_cycles += elapsed
            core.tot_instructions += instructions
            core.tot_l2_refs += refs
            core.tot_l2_misses += misses
            core.busy += elapsed
            task = core.task
            if task is not None and instructions > 0:
                core.pc_cycles += elapsed
                core.pc_instructions += instructions
                core.pc_l2_refs += refs
                core.pc_l2_misses += misses
                task.instructions_done_in_phase += instructions

    # ------------------------------------------------------------- sampling

    def _sample_cost(self, context: SamplingContext, pollution: float):
        """Memoized, shareable sampling-cost snapshot."""
        memo = (
            self._cost_memo_ik
            if context is SamplingContext.IN_KERNEL
            else self._cost_memo_int
        )
        cost = memo.get(pollution)
        if cost is None:
            cost = self.config.cost_model.cost(context, pollution)
            if len(memo) >= _MEMO_CAP:
                memo.clear()
            memo[pollution] = cost
        return cost

    def _inject(self, core: _FastCoreRun, cycles, instructions, refs, misses):
        """Scalar transcription of ``CoreState.inject`` + period adds."""
        core.tot_cycles += cycles
        core.tot_instructions += instructions
        core.tot_l2_refs += refs
        core.tot_l2_misses += misses
        core.busy += cycles
        core.adv += cycles
        core.pc_cycles += cycles
        core.pc_instructions += instructions
        core.pc_l2_refs += refs
        core.pc_l2_misses += misses

    def _flush_period(self, core, context) -> None:
        now = self.now
        cycles = core.pc_cycles
        instructions = core.pc_instructions
        if self._scheduler_samples:
            self.scheduler.on_sample(
                core.task, instructions, core.pc_l2_misses, cycles
            )
        # close_period drops no-activity periods; mirroring its test here
        # skips the snapshot/record allocations for them entirely.
        if cycles > 0 or instructions > 0:
            self.tracker.close_period(
                core.task.request_id,
                PeriodRecord(
                    start_cycle=core.period_start,
                    end_cycle=now,
                    core=core.cid,
                    counters=CounterSnapshot(
                        cycles=cycles,
                        instructions=instructions,
                        l2_refs=core.pc_l2_refs,
                        l2_misses=core.pc_l2_misses,
                    ),
                    injected_in_kernel=core.period_inj_ik,
                    injected_interrupt=core.period_inj_int,
                    closing_context=context,
                ),
            )
        core.period_start = now
        core.pc_cycles = 0.0
        core.pc_instructions = 0.0
        core.pc_l2_refs = 0.0
        core.pc_l2_misses = 0.0
        core.period_inj_ik = 0
        core.period_inj_int = 0

    def _sample(self, core, context: SamplingContext) -> None:
        """The flattened per-sample hot path.

        One method body covers flush + stats + cost injection + timer
        resets (the reference splits these across five calls): sampler
        events are by far the densest event kind, so call overhead and
        repeated attribute loads dominate otherwise.  Every arithmetic
        operation keeps the reference's exact order.
        """
        task = core.task
        now = self.now
        if self._trace_sample:
            self.obs.emit(
                "sample",
                now,
                request_id=task.request_id,
                task_id=task.task_id,
                core=core.cid,
                context=context.value,
            )
        # --- inlined _flush_period ---
        cycles = core.pc_cycles
        instructions = core.pc_instructions
        if self._scheduler_samples:
            self.scheduler.on_sample(task, instructions, core.pc_l2_misses, cycles)
        if cycles > 0 or instructions > 0:
            # Positional construction: keyword packing is measurable at
            # this call frequency.  Field order is pinned by the
            # PeriodRecord / CounterSnapshot signatures.
            record = PeriodRecord(
                core.period_start,
                now,
                core.cid,
                CounterSnapshot(
                    cycles, instructions, core.pc_l2_refs, core.pc_l2_misses
                ),
                core.period_inj_ik,
                core.period_inj_int,
                context,
            )
            sink = core.periods_sink
            if sink is None:
                self.tracker.close_period(task.request_id, record)
            else:
                sink.append(record)
        core.period_start = now
        # --- inlined SamplerStats.record(mandatory=False) + cost memo
        # (per-context dicts with plain float keys dodge the enum hash) ---
        phase = core.phases[task.phase_index]
        pollution = phase.behavior.cache_footprint
        if context is SamplingContext.IN_KERNEL:
            self.stats.in_kernel_samples += 1
            memo = self._cost_memo_ik
            core.period_inj_ik = 1
            core.period_inj_int = 0
        else:
            self.stats.interrupt_samples += 1
            memo = self._cost_memo_int
            core.period_inj_ik = 0
            core.period_inj_int = 1
        cost = memo.get(pollution)
        if cost is None:
            cost = self.config.cost_model.cost(context, pollution)
            if len(memo) >= _MEMO_CAP:
                memo.clear()
            memo[pollution] = cost
        # --- inlined _inject: the period counters restart from the
        # injected cost (0.0 + x == x bit-exactly) ---
        cost_cycles = cost.cycles
        cost_instructions = cost.instructions
        cost_refs = cost.l2_refs
        cost_misses = cost.l2_misses
        core.tot_cycles += cost_cycles
        core.tot_instructions += cost_instructions
        core.tot_l2_refs += cost_refs
        core.tot_l2_misses += cost_misses
        core.busy += cost_cycles
        last_advance = core.adv + cost_cycles
        core.adv = last_advance
        core.pc_cycles = cost_cycles
        core.pc_instructions = cost_instructions
        core.pc_l2_refs = cost_refs
        core.pc_l2_misses = cost_misses
        core.last_sample = now
        # --- inlined _reset_sampler_timers + _update_core_timers ---
        dl = self._dl
        cid = core.cid
        delay = self._sampler_delay
        dl[_ROW_INTERRUPT, cid] = _INF if delay is None else now + delay
        rates = core.rx
        if rates is not None:
            remaining = phase.instructions - task.instructions_done_in_phase
            if remaining <= 0.0:
                remaining = 0.0  # == max(0.0, remaining) bit-exactly
            dl[_ROW_PHASE, cid] = last_advance + remaining * rates.cpi
            if self._wants_syscall:
                self._reset_ratecall(core)

    def _reset_sampler_timers(self, core) -> None:
        delay = self._sampler_delay
        self._dl[_ROW_INTERRUPT, core.cid] = (
            _INF if delay is None else self.now + delay
        )

    def _on_phase_end(self, core_id: int) -> None:
        """Flattened base handler for the densest non-sampler event.

        ``core.phases`` replaces the ``task.stage.phases`` property chain
        and ``enter_next_phase`` is inlined on the dominant within-stage
        branch; every operation and its order match the reference.
        """
        core = self.cores[core_id]
        task = core.task
        phases = core.phases
        idx = task.phase_index
        task.instructions_done_in_phase = float(phases[idx].instructions)

        if idx != len(phases) - 1:
            name = phases[idx + 1].entry_syscall
            if name is not None:
                self.tracker.record_syscall(task.request_id, self.now, name)
                if self._accepts_trigger(name) and (
                    self.now - core.last_sample >= self._t_syscall_min_cycles
                ):
                    self._sample(core, SamplingContext.IN_KERNEL)
            # --- inlined task.enter_next_phase() ---
            task.phase_index = idx + 1
            task.instructions_done_in_phase = 0.0
            if self._trace_phase:
                self.obs.emit(
                    "phase_transition",
                    self.now,
                    request_id=task.request_id,
                    task_id=task.task_id,
                    core=core_id,
                    stage=task.stage_index,
                    phase=task.phase_index,
                    entry_syscall=name,
                )
            self._recompute_rates()
            return

        if not task.on_last_stage:
            self._hand_off_stage(core, task)
        else:
            self._complete_request(core, task)
        self._dispatch(core_id)
        self._recompute_rates()

    def _on_ratecall(self, core_id: int) -> None:
        core = self.cores[core_id]
        task = core.task
        pool = core.phases[task.phase_index].syscall_pool
        name = pool[int(self.rng.integers(len(pool)))]
        if self._accepts_trigger(name):
            self._sample(core, SamplingContext.IN_KERNEL)
        else:
            self._reset_ratecall(core)

    # ---------------------------------------------------------- dispatching

    def _clear_core(self, core) -> None:
        core.state.rates = None
        core.rx = None
        core.periods_sink = None
        core.phases = None
        self._dl[:, core.cid] = _INF

    def _switch_in(self, core, task) -> None:
        if self._trace_dispatch:
            self.obs.emit(
                "task_dispatched",
                self.now,
                request_id=task.request_id,
                task_id=task.task_id,
                core=core.cid,
                stage=task.stage_index,
                phase=task.phase_index,
            )
        if (
            self.latency is not None
            and task.stage_index == 0
            and not task.has_started
        ):
            self.latency.on_start(task.request_id, self.now)
        task.state = TaskState.RUNNING
        core.task = task
        core.periods_sink = (
            self.tracker.period_sink(task.request_id)
            if self._direct_periods
            else None
        )
        core.period_start = self.now
        core.pc_cycles = 0.0
        core.pc_instructions = 0.0
        core.pc_l2_refs = 0.0
        core.pc_l2_misses = 0.0
        core.period_inj_ik = 0
        core.period_inj_int = 0
        core.last_sample = self.now
        cid = core.cid
        self._dl[_ROW_QUANTUM, cid] = self.now + self._quantum_cycles
        self._dl[_ROW_RESCHED, cid] = (
            self.now + self._resched_cycles if self._resched_cycles else _INF
        )

        phases = task.request.stages[task.stage_index].phases
        core.phases = phases
        phase = phases[task.phase_index]
        if task.phase_index == 0 and task.instructions_done_in_phase == 0:
            if phase.entry_syscall is not None:
                self.tracker.record_syscall(
                    task.request_id, self.now, phase.entry_syscall
                )

        cost = self._sample_cost(
            SamplingContext.IN_KERNEL, phase.behavior.cache_footprint
        )
        cost_cycles = cost.cycles
        cost_instructions = cost.instructions
        cost_refs = cost.l2_refs
        cost_misses = cost.l2_misses
        self.stats.record(SamplingContext.IN_KERNEL, mandatory=True)
        if task.has_started and core.last_task_id != task.task_id:
            behavior = phase.behavior
            footprint = behavior.cache_footprint
            refill_cycles = footprint * self.config.ctx_switch_refill_cycles
            transient_cpi = 2.0 * behavior.solo_cpi(
                self.machine.l2_miss_penalty_cycles
            )
            instructions = min(
                refill_cycles / transient_cpi, 0.9 * task.remaining_in_phase
            )
            refill_cycles = instructions * transient_cpi
            lines = footprint * (
                self.machine.l2_size_kb * 1024 / self.machine.l2_line_bytes
            )
            cost_cycles = cost_cycles + refill_cycles
            cost_instructions = cost_instructions + instructions
            cost_refs = cost_refs + lines
            cost_misses = cost_misses + lines
            task.advance_instructions(instructions)
        task.has_started = True
        self._inject(core, cost_cycles, cost_instructions, cost_refs, cost_misses)
        core.period_inj_ik += 1
        core.last_task_id = task.task_id

        self._reset_sampler_timers(core)

    # --------------------------------------------------------------- rates

    def _recompute_rates(self) -> None:
        behaviors = {}
        for core in self.cores:
            task = core.task
            if task is not None:
                behaviors[core.cid] = core.phases[task.phase_index].behavior
        # Cores iterate in id order, so the (cid, id(behavior)) tuple is a
        # canonical key with a cheap int hash.  The memo value pins the
        # behavior objects, so an id in a live key can never be recycled
        # to a different behavior.  Only the pure rate values are memoized
        # — the per-core timer updates below (and their RNG draws) run on
        # every recompute, exactly as in the reference.
        if self._rates_memo_enabled:
            key = tuple((cid, id(b)) for cid, b in behaviors.items())
            entry = self._rates_memo.get(key)
            if entry is None:
                rates = self._compute_rates(behaviors)
                memo = self._rates_memo
                if len(memo) >= _RATES_MEMO_PROBATION and not self._rates_memo_hits:
                    # Hundreds of distinct keys and not one reuse: this
                    # run's behavior sets never recur (jittered server
                    # phases make them unique).  Stop keying for good.
                    self._rates_memo_enabled = False
                    memo.clear()
                elif len(memo) >= _MEMO_CAP:
                    memo.clear()
                else:
                    memo[key] = (tuple(behaviors.values()), rates)
            else:
                self._rates_memo_hits += 1
                rates = entry[1]
        else:
            rates = self._compute_rates(behaviors)
        dl = self._dl
        wants_syscall = self._wants_syscall
        for core in self.cores:
            r = rates[core.cid]
            if r is not None:
                core.state.rates = r
                core.rx = r
                # --- inlined _update_core_timers (task/rates non-None:
                # r came from this core's current behavior) ---
                task = core.task
                phase = core.phases[task.phase_index]
                remaining = max(
                    0.0, phase.instructions - task.instructions_done_in_phase
                )
                dl[_ROW_PHASE, core.cid] = core.adv + remaining * r.cpi
                if wants_syscall:
                    self._reset_ratecall(core)
            elif core.task is None:
                core.state.rates = None
                core.rx = None

    def _compute_rates(self, behaviors):
        """Inlined :func:`~repro.hardware.cpu.compute_effective_rates`.

        Bit-identical by construction: every accumulation (peer-pressure
        sums, per-domain bus totals) runs in the reference's exact order
        with the reference's exact start values, and the cache/bus model
        methods are invoked with the same arguments — just behind
        per-behavior and per-(behavior, co-pressure) memos, which is
        sound because the models are frozen and the functions pure.
        """
        cache = self.config.cache
        bus = self.config.bus
        penalty_base = self._miss_penalty
        pressure_memo = self._pressure_memo
        contention_memo = self._contention_memo

        # The inner memos key on id(behavior): PhaseBehavior's frozen-
        # dataclass __hash__ recomputes a field-tuple hash on every lookup,
        # and these dicts are probed several times per event.  id keys are
        # sound because the pressure memo holds a strong reference to each
        # behavior it has seen (so its id cannot be recycled while an entry
        # exists), and the contention memo — whose keys borrow those ids —
        # is cleared whenever the pressure memo is.
        # cid-indexed lists (None/0.0 for idle cores): iteration below is
        # always in ascending cid order — the reference's core order — so
        # every float accumulation is performed in the identical sequence,
        # and list indexing replaces per-event dict churn.
        ncores = self._ncores
        pressures = [None] * ncores
        solo_cpis = [0.0] * ncores
        for cid, behavior in behaviors.items():
            bid = id(behavior)
            entry = pressure_memo.get(bid)
            if entry is None:
                entry = (
                    behavior,
                    phase_pressure(
                        behavior.l2_refs_per_ins,
                        behavior.base_cpi,
                        behavior.cache_footprint,
                    ),
                    behavior.solo_cpi(penalty_base),
                )
                if len(pressure_memo) >= _MEMO_CAP:
                    pressure_memo.clear()
                    contention_memo.clear()
                pressure_memo[bid] = entry
            pressures[cid] = entry[1]
            solo_cpis[cid] = entry[2]

        contention = [None] * ncores
        bus_totals = {}
        for cid, behavior in behaviors.items():
            # sum() over the peer generator starts from int 0 and adds in
            # l2_peers_of order; replicate both exactly.
            co_pressure = 0
            for peer in self._l2_peers[cid]:
                peer_pressure = pressures[peer]
                if peer_pressure is not None:
                    co_pressure = co_pressure + peer_pressure
            ckey = (id(behavior), co_pressure)
            entry = contention_memo.get(ckey)
            if entry is None:
                miss_ratio = cache.effective_miss_ratio(
                    behavior.l2_miss_ratio, behavior.cache_footprint, co_pressure
                )
                ref_rate = cache.effective_ref_rate(
                    behavior.l2_refs_per_ins, co_pressure
                )
                entry = (
                    miss_ratio,
                    ref_rate,
                    bus.miss_traffic(ref_rate, miss_ratio, solo_cpis[cid]),
                )
                if len(contention_memo) >= _MEMO_CAP:
                    contention_memo.clear()
                contention_memo[ckey] = entry
            contention[cid] = entry
            domain = self._bus_domains[cid]
            bus_totals[domain] = bus_totals.get(domain, 0.0) + entry[2]

        gamma = self._bus_gamma
        beta = self._bus_beta
        occ_clamp = self._bus_occ_clamp
        rates = [None] * ncores
        for cid, behavior in behaviors.items():
            miss_ratio, ref_rate, traffic = contention[cid]
            others = bus_totals[self._bus_domains[cid]] - traffic
            # Inlined MemoryBusModel.effective_miss_penalty, op for op.
            occupancy = max(0.0, others)
            occupancy = min(occupancy, occ_clamp)
            penalty = penalty_base * (
                1.0 + gamma * occupancy + beta * occupancy**2
            )
            rates[cid] = EffectiveRates(
                cpi=behavior.base_cpi + penalty * ref_rate * miss_ratio,
                l2_refs_per_ins=ref_rate,
                l2_miss_ratio=miss_ratio,
            )
        return rates

    def _update_core_timers(self, core) -> None:
        task = core.task
        rates = core.rx
        if task is None or rates is None:
            return
        phase = core.phases[task.phase_index]
        remaining = max(
            0.0, phase.instructions - task.instructions_done_in_phase
        )
        self._dl[_ROW_PHASE, core.cid] = core.adv + remaining * rates.cpi
        # In non-syscall sampling modes the ratecall row is invariantly
        # inf (set by __init__/_clear_core; _reset_ratecall would only
        # rewrite inf), so the write is skipped entirely.
        if self._wants_syscall:
            self._reset_ratecall(core)

    def _reset_ratecall(self, core) -> None:
        cid = core.cid
        if not self._wants_syscall:
            self._dl[_ROW_RATECALL, cid] = _INF
            return
        task = core.task
        phase = core.phases[task.phase_index]
        if phase.syscall_rate_per_ins <= 0:
            self._dl[_ROW_RATECALL, cid] = _INF
            return
        earliest = max(
            core.adv,
            core.last_sample + self._t_syscall_min_cycles,
        )
        delay = next_rate_syscall_cycles(
            self.rng, phase.syscall_rate_per_ins, core.rx.cpi
        )
        self._dl[_ROW_RATECALL, cid] = earliest + delay


class ReferenceSimulator(ServerSimulator):
    """The reference event loop, pinned regardless of the environment.

    Construct this class directly to bypass the ``__new__`` routing —
    the differential suite and the speed benchmark compare
    :class:`FastpathSimulator` against it without touching the
    environment.
    """
