"""System-call stream model and next-syscall distance analysis.

System calls come from two sources in the workload model: *entry* syscalls
issued at phase boundaries (deterministic, named — the material for behavior
transition signals), and *rate-based* anonymous calls drawn from a Poisson
process per phase (network/storage I/O chatter).  The simulator materializes
rate-based calls lazily — only when a syscall-triggered sampler could act on
one — exploiting the memorylessness of the exponential distribution.

This module also implements the Figure 4 measurement: the distribution of
the distance from an arbitrary instant of request execution to the next
system call, in both instructions and (solo-CPI-estimated) time.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.workloads.base import RequestSpec


def next_rate_syscall_cycles(
    rng: np.random.Generator, rate_per_ins: float, cpi: float
) -> float:
    """Draw the delay (in cycles) until the next rate-based syscall."""
    if rate_per_ins <= 0:
        return float("inf")
    mean_cycles = cpi / rate_per_ins
    return float(rng.exponential(mean_cycles))


def sample_next_syscall_distance(
    spec: RequestSpec,
    rng: np.random.Generator,
    frequency_ghz: float = 3.0,
    miss_penalty_cycles: float = 220.0,
    position: float = None,
) -> Tuple[float, float]:
    """Distance from a random instant to the next syscall.

    Returns ``(instructions, microseconds)``.  The instant is drawn
    uniformly over the request's instructions (or fixed via ``position``,
    an instruction offset); the walk proceeds through the phase list:
    within a phase with a rate-based stream the next call is exponential,
    otherwise execution runs syscall-free until the next phase with an
    entry syscall (or a rate-based stream, or a tier boundary / request
    completion, both of which involve socket syscalls).
    """
    phases = list(spec.phases())
    lengths = np.array([p.instructions for p in phases], dtype=float)
    total = lengths.sum()
    if position is None:
        position = rng.uniform(0.0, total)
    elif not 0.0 <= position < total:
        raise ValueError(f"position {position} outside [0, {total})")

    # Tier boundaries (socket ops) act as guaranteed syscalls: record the
    # cumulative instruction offsets where a stage ends.
    boundary_offsets = set()
    acc = 0
    for stage in spec.stages:
        acc += stage.instructions
        boundary_offsets.add(acc)

    cumulative = np.concatenate([[0.0], np.cumsum(lengths)])
    phase_idx = int(np.searchsorted(cumulative, position, side="right") - 1)
    phase_idx = min(phase_idx, len(phases) - 1)
    offset_in_phase = position - cumulative[phase_idx]

    distance_ins = 0.0
    distance_cycles = 0.0
    idx = phase_idx
    offset = offset_in_phase
    while True:
        p = phases[idx]
        solo_cpi = p.behavior.solo_cpi(miss_penalty_cycles)
        remaining = p.instructions - offset
        if p.syscall_rate_per_ins > 0:
            draw = rng.exponential(1.0 / p.syscall_rate_per_ins)
            if draw <= remaining:
                distance_ins += draw
                distance_cycles += draw * solo_cpi
                break
        distance_ins += remaining
        distance_cycles += remaining * solo_cpi
        end_offset = cumulative[idx + 1]
        if end_offset in boundary_offsets:
            break  # socket op at tier boundary / request completion
        idx += 1
        offset = 0.0
        if phases[idx].entry_syscall is not None:
            break  # the next phase begins with a named syscall

    return distance_ins, distance_cycles / (frequency_ghz * 1000.0)


def next_syscall_distance_cdf(
    spec_iter,
    rng: np.random.Generator,
    distances_grid_us,
    distances_grid_ins,
    samples_per_request: int = 20,
    frequency_ghz: float = 3.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cumulative probability of the next-syscall distance (Figure 4).

    ``spec_iter`` yields request specs; ``samples_per_request`` instants per
    spec are drawn on average, allocated proportionally to each request's
    instruction count ("an arbitrary instant in a request execution" is an
    instant of the *system's* execution, so long requests weigh more).
    Returns two CDF arrays evaluated on the supplied time (us) and
    instruction grids.
    """
    specs = list(spec_iter)
    if not specs:
        raise ValueError("no request specs supplied")
    masses = np.array([s.total_instructions for s in specs], dtype=float)
    total_samples = samples_per_request * len(specs)
    counts = rng.multinomial(total_samples, masses / masses.sum())
    ins_samples = []
    us_samples = []
    for spec, count in zip(specs, counts):
        for _ in range(int(count)):
            d_ins, d_us = sample_next_syscall_distance(
                spec, rng, frequency_ghz=frequency_ghz
            )
            ins_samples.append(d_ins)
            us_samples.append(d_us)
    ins_samples = np.sort(np.asarray(ins_samples))
    us_samples = np.sort(np.asarray(us_samples))
    cdf_time = np.searchsorted(us_samples, distances_grid_us, side="right") / len(
        us_samples
    )
    cdf_ins = np.searchsorted(ins_samples, distances_grid_ins, side="right") / len(
        ins_samples
    )
    return cdf_time, cdf_ins
