"""Online cause attribution: classify *why* a flagged request is anomalous.

The streaming anomaly detector (:class:`~repro.online.pipeline.
OnlinePipeline`, stage 3) says "this request deviates from its group";
the :class:`CauseAttributor` closes the paper's Section 4.3 loop by
saying *why*, from the same per-window counter stream the detector
already consumes — no extra instrumentation, bounded per-request state.

Features per completed window (all ratios against *per-window-index*
group centroids — the same incremental structure the anomaly stage uses
— learned from not-yet-flagged traffic, so a request's natural phase
profile is part of the baseline, not part of the signal):

* **CPI elevation** ``cpi / centroid_cpi[window]`` — how inflated, and
  in which windows (the *shape*: one spike, several disjoint spikes, a
  clean head with an elevated tail, or uniform inflation).
* **Reference-rate ratio** ``l2_refs_per_ins / centroid_refs[window]``
  — spinning executes almost no memory references (ratio well below
  one); bandwidth and locality faults push it well above one.  The
  per-index baseline matters: a commit phase's naturally low reference
  rate must not read as spinning.
* **Miss ratio** (absolute) — separates pathological locality (nearly
  every reference misses) from bandwidth saturation (streaming with a
  moderate miss ratio).

The decision tree mirrors the taxonomy's signature axes
(:mod:`repro.faults.taxonomy`):

1. A *strong* spike with a low reference ratio → spin family: extreme
   elevation is a ``gc_pause``; several disjoint spin runs a
   ``lock_convoy``; one run a ``lock_stall``.
2. A strong spike with a very high reference ratio → ``membw_saturation``
   (streaming); high reference ratio *and* high miss ratio →
   ``cache_thrash``.
3. Otherwise the elevation is moderate: a clean head with an elevated
   tail is a ``slow_replica``; broad coverage of mildly elevated
   windows a ``slowdown``; several disjoint mild runs a
   ``gray_degradation``.

Requests flagged before any window clears the elevation gates (or
before the kind's centroids have warmed up) attribute to ``"unknown"``
rather than guess.

Determinism contract: baselines accumulate in event order, state
round-trips exactly through :meth:`CauseAttributor.to_state` /
:meth:`from_state`, and every decision is a pure function of the window
stream — checkpoint/restore and failover replay reproduce the decision
log byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.centroids import GroupCentroids

__all__ = [
    "ATTRIBUTION_UNKNOWN",
    "AttributionThresholds",
    "CauseAttributor",
    "score_attribution",
]

#: Attribution verdict when no feature clears its gate.
ATTRIBUTION_UNKNOWN = "unknown"


@dataclass(frozen=True)
class AttributionThresholds:
    """Decision-tree gates (pinned; calibrated against injected faults on
    the tpcc/rubis/webserver smoke grid under multicore contention)."""

    #: A window is *mildly* elevated (shape analysis) at this CPI ratio.
    weak_elevation: float = 1.18
    #: A window whose reference ratio collapses to or below this (with
    #: CPI elevated past ``gc_min_elevation``) → gc_pause: the pause
    #: executes essentially no memory references, a collapse nothing
    #: else in the taxonomy produces.
    gc_refs_ratio: float = 0.3
    gc_min_elevation: float = 1.6
    #: At least ``membw_sustained_windows`` windows with a reference
    #: ratio at or above ``membw_sustained_refs`` → membw_saturation:
    #: saturation streams for a long stretch, thrashing spikes briefly.
    membw_sustained_refs: float = 2.0
    membw_sustained_windows: int = 3
    #: Maximum reference ratio at or above this → locality family
    #: (streaming or thrashing floods the reference stream).
    locality_refs_ratio: float = 2.5
    #: Weaker locality evidence: any elevated window whose reference
    #: ratio reaches this while missing at or above
    #: ``thrash_miss_ratio`` → cache_thrash (a straddling span dilutes
    #: the reference spike below the primary gate).
    locality_secondary_refs: float = 1.3
    locality_secondary_elevation: float = 1.3
    #: Miss ratio at the reference-spike window splitting cache_thrash
    #: (at or above) from membw_saturation (below: streaming misses
    #: moderately).
    thrash_miss_ratio: float = 0.7
    #: Spin evidence: a window with a reference ratio at or below this
    #: *and* CPI elevation at or above ``spin_elevation`` (dilute
    #: spinning depresses references while inflating CPI).
    spin_refs_ratio: float = 0.85
    spin_elevation: float = 1.4
    #: A spin window's elevation must exceed the mean elevation of
    #: windows more than two away by this factor — spin spans are local
    #: spikes, scaled faults elevate whole regions.
    spike_local_contrast: float = 1.25
    #: Convoy-run counting admits weaker spin windows (each convoy span
    #: is shorter than a lone stall, so per-window dilution is higher).
    convoy_refs_ratio: float = 0.88
    convoy_elevation: float = 1.3
    #: Disjoint spin-window runs at or above this → lock_convoy
    #: (fewer → lock_stall).
    convoy_runs: int = 2
    #: Smoothed last-third mean elevation over first-third mean at or
    #: above this (with the tail itself elevated past
    #: ``replica_tail_elevation``) → slow_replica: a degraded
    #: backend/tier slows the back of the request, not the front.  The
    #: middle third — where the degradation turns on — is ignored.
    replica_contrast: float = 1.25
    replica_tail_elevation: float = 1.15
    #: ... and the head itself must look healthy (a uniform slowdown's
    #: head does not).
    replica_head_elevation: float = 1.18
    #: ... and the tail's reference stream must stay ordinary (a late
    #: thrash span floods it).
    replica_max_tail_refs: float = 1.7
    #: Hysteresis bands for the elevated/healthy state machine used to
    #: count gray-degradation on/off alternations over the *smoothed*
    #: elevation shape: a window is elevated at or above
    #: ``gray_high_elevation``, healthy at or below
    #: ``gray_low_elevation``; ``gray_transitions`` state flips →
    #: gray_degradation.
    gray_high_elevation: float = 1.25
    gray_low_elevation: float = 1.1
    gray_transitions: int = 4
    #: Mildly-elevated coverage at or above this fraction of windows →
    #: slowdown (uniform inflation).
    slowdown_coverage: float = 0.5
    #: Tie-break for a single mild run: mean elevation at or above this
    #: → slowdown, below → gray_degradation.
    slowdown_elevation: float = 1.3
    #: Requests a kind's centroids must absorb before attribution starts.
    baseline_min_requests: int = 6


class CauseAttributor:
    """Per-kind centroid baselines + signature classifier (deterministic)."""

    def __init__(self, thresholds: Optional[AttributionThresholds] = None):
        self.thresholds = thresholds or AttributionThresholds()
        #: Per-kind per-window-index running means, fed only from windows
        #: of requests not yet flagged (event order is part of the
        #: checkpoint byte-identity surface).
        self.cpi_centroids = GroupCentroids()
        self.refs_centroids = GroupCentroids()

    # -- baseline learning ----------------------------------------------

    #: Pooled-baseline group name; ``*`` cannot collide with a request
    #: kind (workload kinds are identifier-like).
    POOLED = "*"

    def observe_window(self, kind: str, window_index: int, cpi: float,
                       refs_per_ins: float, miss_ratio: float) -> None:
        """Fold one unflagged window into the kind's running baselines
        (and the pooled cross-kind fallback)."""
        self.cpi_centroids.group(kind).observe(window_index, cpi)
        self.refs_centroids.group(kind).observe(window_index, refs_per_ins)
        self.cpi_centroids.group(self.POOLED).observe(window_index, cpi)
        self.refs_centroids.group(self.POOLED).observe(
            window_index, refs_per_ins
        )

    def warm(self, kind: str) -> bool:
        """Whether the kind's baselines have absorbed enough requests."""
        return (
            self.cpi_centroids.group(kind).count_at(0)
            >= self.thresholds.baseline_min_requests
        )

    def _baseline_group(self, kind: str) -> Optional[str]:
        """The baseline to judge a request against: its own kind once
        warm, else the pooled cross-kind fallback (rare kinds would
        otherwise stay unattributable for the whole run)."""
        if self.warm(kind):
            return kind
        if self.warm(self.POOLED):
            return self.POOLED
        return None

    # -- classification --------------------------------------------------

    def classify(
        self, kind: str, features: Sequence[Sequence[float]]
    ) -> str:
        """Attribute a flagged request from its (cpi, refs, miss) windows."""
        baseline_group = self._baseline_group(kind) if features else None
        if baseline_group is None:
            return ATTRIBUTION_UNKNOWN
        t = self.thresholds
        cpi_centroid = self.cpi_centroids.group(baseline_group)
        refs_centroid = self.refs_centroids.group(baseline_group)

        # CPI elevation is judged against the *per-index* centroid (the
        # shape signal needs the kind's natural phase profile removed);
        # deep indices without population evidence fall back to the last
        # index that has some.  Reference ratios are judged against the
        # kind's *overall* mean instead: an injected span shifts every
        # later window's content relative to the index-aligned centroid,
        # which would make per-index reference ratios noisy exactly at
        # the windows the spin/locality tests inspect.
        refs_base = _overall_mean(refs_centroid)
        elevations: List[float] = []
        refs_ratios: List[float] = []
        miss_ratios: List[float] = []
        cpi_base: Optional[float] = None
        for index, window in enumerate(features):
            cpi, refs_per_ins, miss_ratio = window[0], window[1], window[2]
            mean = cpi_centroid.mean_at(index)
            if mean is not None and mean > 0:
                cpi_base = mean
            elevations.append(cpi / cpi_base if cpi_base else 1.0)
            refs_ratios.append(
                refs_per_ins / refs_base if refs_base else 1.0
            )
            miss_ratios.append(miss_ratio)

        count = len(features)
        weak = [i for i in range(count) if elevations[i] >= t.weak_elevation]

        # Trailing windows are unreliable (the final flush is partial and
        # drains with fewer co-runners), so counter-signature tests only
        # inspect a trimmed prefix.  Shape rules keep the full range —
        # their tail slack absorbs the same effect.
        if count >= 8:
            trimmed = count - 2
        elif count >= 4:
            trimmed = count - 1
        else:
            trimmed = count

        # GC pause: the reference rate collapses while CPI explodes —
        # nothing else in the taxonomy silences the reference stream.
        for i in range(trimmed):
            if (
                refs_ratios[i] <= t.gc_refs_ratio
                and elevations[i] >= t.gc_min_elevation
            ):
                return "gc_pause"

        # Locality family: a flooded reference stream.  Saturation
        # streams across several windows; thrashing spikes one or two
        # with a pathological miss ratio.
        sustained = sum(
            1
            for i in range(trimmed)
            if refs_ratios[i] >= t.membw_sustained_refs
        )
        if sustained >= t.membw_sustained_windows:
            return "membw_saturation"
        refs_peak = max(range(trimmed), key=lambda i: refs_ratios[i])
        if refs_ratios[refs_peak] >= t.locality_refs_ratio:
            if miss_ratios[refs_peak] >= t.thrash_miss_ratio:
                return "cache_thrash"
            return "membw_saturation"
        for i in range(trimmed):
            if (
                refs_ratios[i] >= t.locality_secondary_refs
                and miss_ratios[i] >= t.thrash_miss_ratio
                and elevations[i] >= t.locality_secondary_elevation
            ):
                return "cache_thrash"

        # Spin family: depressed references co-located with inflated CPI
        # that forms a *local* spike.  The locality guard separates spin
        # spans from scaled faults: a stall inflates one spot relative
        # to its surroundings, while a slowdown/slow-replica elevates
        # whole regions, so even its naturally reference-light windows
        # are no higher than their neighborhood.
        def _local_spike(i: int) -> bool:
            surround = [
                elevations[j]
                for j in range(count)
                if abs(j - i) > 2
            ]
            if not surround:
                return True
            return (
                elevations[i]
                >= t.spike_local_contrast * (sum(surround) / len(surround))
            )

        spin_windows = [
            i
            for i in range(trimmed)
            if refs_ratios[i] <= t.spin_refs_ratio
            and elevations[i] >= t.spin_elevation
            and _local_spike(i)
        ]
        if spin_windows:
            # No local-contrast guard here: a convoy's several spans
            # raise each other's surroundings, and the family decision
            # is already made.
            convoy_windows = [
                i
                for i in range(trimmed)
                if refs_ratios[i] <= t.convoy_refs_ratio
                and elevations[i] >= t.convoy_elevation
            ]
            if _runs(convoy_windows) >= t.convoy_runs:
                return "lock_convoy"
            return "lock_stall"

        # Scaled family (no counter signature): the elevation shape
        # decides, over a median-3 smoothing that suppresses
        # single-window contention noise.
        if not weak:
            return ATTRIBUTION_UNKNOWN
        smoothed = _median3(elevations)
        third = count // 3
        if third:
            head_mean = sum(smoothed[:third]) / third
            tail_mean = sum(smoothed[count - third:]) / third
            tail_refs_quiet = all(
                refs_ratios[i] < t.replica_max_tail_refs
                for i in range(count - third, count)
            )
            if (
                head_mean > 0
                and head_mean <= t.replica_head_elevation
                and tail_mean / head_mean >= t.replica_contrast
                and tail_mean >= t.replica_tail_elevation
                and tail_refs_quiet
            ):
                return "slow_replica"
        if (
            _transitions(
                smoothed, t.gray_high_elevation, t.gray_low_elevation
            )
            >= t.gray_transitions
        ):
            return "gray_degradation"
        covered = sum(1 for e in smoothed if e >= t.weak_elevation)
        if covered / count >= t.slowdown_coverage:
            return "slowdown"
        if _runs(weak) >= 2:
            return "gray_degradation"
        mean_elevation = sum(elevations[i] for i in weak) / len(weak)
        if mean_elevation >= t.slowdown_elevation:
            return "slowdown"
        return "gray_degradation"

    # -- checkpointing ---------------------------------------------------

    def to_state(self) -> dict:
        return {
            "cpi_centroids": self.cpi_centroids.to_state(),
            "refs_centroids": self.refs_centroids.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "CauseAttributor":
        attributor = cls()
        attributor.cpi_centroids = GroupCentroids.from_state(
            state["cpi_centroids"]
        )
        attributor.refs_centroids = GroupCentroids.from_state(
            state["refs_centroids"]
        )
        return attributor


def _runs(indices: Sequence[int]) -> int:
    """Count maximal runs of consecutive window indices."""
    runs = 0
    previous = None
    for index in indices:
        if previous is None or index > previous + 1:
            runs += 1
        previous = index
    return runs


def _median3(values: Sequence[float]) -> List[float]:
    """Sliding median-of-three (endpoints pass through)."""
    count = len(values)
    if count < 3:
        return list(values)
    smoothed = [values[0]]
    for i in range(1, count - 1):
        smoothed.append(
            sorted((values[i - 1], values[i], values[i + 1]))[1]
        )
    smoothed.append(values[-1])
    return smoothed


def _transitions(elevations: Sequence[float], high: float, low: float) -> int:
    """Count elevated/healthy state flips with hysteresis.

    Windows between ``low`` and ``high`` keep the current state, so a
    single noisy dip inside an otherwise uniform elevation does not
    register as an on/off alternation.
    """
    flips = 0
    state = None
    for elevation in elevations:
        if elevation >= high:
            if state == "low":
                flips += 1
            state = "high"
        elif elevation <= low:
            if state == "high":
                flips += 1
            state = "low"
    return flips


def _overall_mean(centroid) -> Optional[float]:
    """Population-weighted mean across a centroid's window indices."""
    total = 0.0
    weight = 0
    for index in range(len(centroid)):
        count = centroid.count_at(index)
        mean = centroid.mean_at(index)
        if count and mean is not None:
            total += mean * count
            weight += count
    return total / weight if weight else None


def score_attribution(records: Sequence[dict]) -> dict:
    """Score attribution decisions against injected ground truth.

    ``records`` are completed-request records carrying ``injected_fault``
    (ground truth), ``flagged``, and ``attributed_cause``.  Returns a
    JSON-ready document: per-kind precision/recall/accuracy, a confusion
    matrix over true kinds (rows) and attributed causes (columns, with
    ``missed`` for undetected injections), and overall accuracy over the
    detected-and-injected population.
    """
    confusion: Dict[str, Dict[str, int]] = {}
    per_kind: Dict[str, Dict[str, float]] = {}
    attributed_counts: Dict[str, int] = {}
    detected_total = 0
    correct_total = 0
    false_attributions = 0

    for record in records:
        truth = record.get("injected_fault")
        cause = record.get("attributed_cause")
        if cause is not None:
            attributed_counts[cause] = attributed_counts.get(cause, 0) + 1
        if truth is None:
            if cause is not None:
                row = confusion.setdefault("none", {})
                row[cause] = row.get(cause, 0) + 1
                false_attributions += 1
            continue
        stats = per_kind.setdefault(
            truth,
            {"injected": 0, "detected": 0, "correct": 0},
        )
        stats["injected"] += 1
        row = confusion.setdefault(truth, {})
        if cause is None:
            row["missed"] = row.get("missed", 0) + 1
            continue
        stats["detected"] += 1
        detected_total += 1
        row[cause] = row.get(cause, 0) + 1
        if cause == truth:
            stats["correct"] += 1
            correct_total += 1

    rows = []
    for kind in sorted(per_kind):
        stats = per_kind[kind]
        attributed = attributed_counts.get(kind, 0)
        rows.append(
            {
                "kind": kind,
                "injected": stats["injected"],
                "detected": stats["detected"],
                "correct": stats["correct"],
                "recall": (
                    stats["correct"] / stats["injected"]
                    if stats["injected"]
                    else None
                ),
                "precision": (
                    stats["correct"] / attributed if attributed else None
                ),
                "accuracy_given_detected": (
                    stats["correct"] / stats["detected"]
                    if stats["detected"]
                    else None
                ),
            }
        )
    return {
        "per_kind": rows,
        "confusion": {
            truth: dict(sorted(confusion[truth].items()))
            for truth in sorted(confusion)
        },
        "detected": detected_total,
        "correct": correct_total,
        "accuracy": correct_total / detected_total if detected_total else None,
        "false_attributions": false_attributions,
    }
