"""Versioned checkpoint/restore for the streaming pipeline.

A checkpoint is a canonical JSON document (sorted keys, no whitespace)
holding the *entire* decision-relevant state of an
:class:`~repro.online.pipeline.OnlinePipeline`: identifier bank, group
centroids, P-square quantile markers, per-request open state (windower
fill, vaEWMA estimate, commit streaks), completed records, and the event
cursor ``last_seq``.

The restore contract is byte-identity, not approximation: Python floats
survive a JSON round trip exactly (``repr``-based encoding), so a pipeline
restored mid-stream and fed the remaining events produces decisions — and
a final report — byte-identical to an uninterrupted run.  The event
cursor makes restore idempotent: replaying the full stream after a restore
skips everything already folded in.

Format changes must bump ``CHECKPOINT_VERSION``; loading a foreign or
future document fails loudly.
"""

from __future__ import annotations

import json

from repro.online.pipeline import OnlinePipeline

CHECKPOINT_FORMAT = "repro-online-checkpoint"
CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint document could not be read.

    Raised — instead of a raw :class:`KeyError` / :class:`json.
    JSONDecodeError` surfacing from the payload internals — for truncated
    files, malformed JSON, foreign documents, unsupported versions, and
    structurally corrupt state payloads.  Subclasses :class:`ValueError`
    so existing callers that catch broadly keep working.
    """


def checkpoint_to_json(pipeline: OnlinePipeline) -> str:
    """Serialize a pipeline's full state as canonical checkpoint JSON."""
    payload = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "state": pipeline.to_state(),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def checkpoint_from_json(text: str, registry=None) -> OnlinePipeline:
    """Rebuild a pipeline from checkpoint JSON (loud on bad input)."""
    if not text.strip():
        raise CheckpointError("empty checkpoint (truncated write?)")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"malformed checkpoint (truncated or corrupt): {error}"
        ) from None
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError("not a repro online checkpoint")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {payload.get('version')!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    state = payload.get("state")
    if not isinstance(state, dict):
        raise CheckpointError("checkpoint has no state object")
    try:
        return OnlinePipeline.from_state(state, registry=registry)
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise CheckpointError(
            f"corrupt checkpoint state (version {CHECKPOINT_VERSION}): "
            f"{type(error).__name__}: {error}"
        ) from None


def save_checkpoint(pipeline: OnlinePipeline, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(checkpoint_to_json(pipeline))
        fh.write("\n")


def load_checkpoint(path: str, registry=None) -> OnlinePipeline:
    with open(path) as fh:
        return checkpoint_from_json(fh.read(), registry=registry)
