"""Scored detection report built from the streaming pipeline's records.

The online pipeline's deliverable is a :class:`DetectionReport`: per-request
outcomes (committed label, commit earliness, anomaly flag, time-to-detect)
plus a summary scoring the anomaly stage against the injected-fault ground
truth (precision / recall / median time-to-detect in instructions) and the
identification + prediction stages against the known request kinds.

``to_json`` is canonical (sorted keys, no whitespace), so two runs that
made identical decisions serialize byte-identically — the property the
checkpoint/restore tests compare.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.report import format_table
from repro.workloads.faults import score_detection


def _median(values: List[float]) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass
class DetectionReport:
    """Everything the streaming run concluded, in JSON-ready form."""

    summary: Dict = field(default_factory=dict)
    per_class: List[Dict] = field(default_factory=list)
    requests: List[Dict] = field(default_factory=list)
    #: Cause-attribution scoring; present only when the pipeline ran with
    #: attribution enabled (keeps pre-attribution report bytes unchanged).
    attribution: Optional[Dict] = None

    def to_json(self) -> str:
        """Canonical serialization (byte-identity comparison surface)."""
        payload = {
            "format": "repro-online-report",
            "version": 1,
            "summary": self.summary,
            "per_class": self.per_class,
            "requests": self.requests,
        }
        if self.attribution is not None:
            payload["attribution"] = self.attribution
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def render(self) -> str:
        """Human-readable report for the CLI."""
        s = self.summary
        lines = [
            f"online streaming report — workload={s.get('workload')} "
            f"seed={s.get('seed')}",
            f"  requests={s['population']}  periods={s['periods']}  "
            f"windows={s['windows']}",
            f"  anomaly: injected={s['injected']}  flagged={s['flagged']}  "
            f"precision={s['precision']:.3f}  recall={s['recall']:.3f}  "
            f"median_ttd_ins={_fmt(s['median_time_to_detect_instructions'])}",
            f"  identify: committed={s['committed']}/{s['population']}  "
            f"label_accuracy={_fmt(s['label_accuracy'])}  "
            f"median_commit_ins={_fmt(s['median_commit_instructions'])}",
            f"  predict: rms_error={_fmt(s['prediction_rms_error'])}  "
            f"mean_abs_error={_fmt(s['prediction_mean_abs_error'])}",
        ]
        if self.per_class:
            lines.append("")
            lines.append(
                format_table(
                    self.per_class,
                    columns=[
                        "class",
                        "requests",
                        "prediction_rms_error",
                        "prediction_mean_abs_error",
                    ],
                    title="per-class prediction error",
                )
            )
        if self.attribution is not None:
            a = self.attribution
            lines.append("")
            lines.append(
                f"  attribute: detected={a['detected']}  "
                f"correct={a['correct']}  accuracy={_fmt(a['accuracy'])}  "
                f"false_attributions={a['false_attributions']}"
            )
            if a["per_kind"]:
                lines.append(
                    format_table(
                        a["per_kind"],
                        columns=[
                            "kind",
                            "injected",
                            "detected",
                            "correct",
                            "recall",
                            "precision",
                        ],
                        title="per-kind cause attribution",
                    )
                )
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "n/a"
    return f"{value:.4g}"


def build_report(pipeline) -> DetectionReport:
    """Fold an :class:`~repro.online.pipeline.OnlinePipeline`'s completed
    records into a scored :class:`DetectionReport`."""
    records = pipeline.records
    flagged = [r["request_id"] for r in records if r["flagged"]]
    injected = [
        r["request_id"] for r in records if r["injected_fault"] is not None
    ]
    detection = score_detection(flagged, injected, population=len(records))

    true_positive_ttds = [
        float(r["time_to_detect_instructions"])
        for r in records
        if r["flagged"]
        and r["injected_fault"] is not None
        and r["time_to_detect_instructions"] is not None
    ]
    commits = [r for r in records if r["committed_label"] is not None]
    commit_ins = [float(r["commit_instructions"]) for r in commits]
    correct = [r for r in commits if r["label_correct"]]

    per_class = []
    for label in sorted(pipeline.class_errors):
        errors = pipeline.class_errors[label]
        per_class.append(
            {
                "class": label,
                "requests": sum(
                    1
                    for r in records
                    if (r["committed_label"] or r["kind"]) == label
                ),
                "prediction_rms_error": errors.rms(),
                "prediction_mean_abs_error": errors.mean_abs(),
            }
        )
    # Sum in sorted-label order: a restored pipeline rebuilds this dict in
    # sorted order, and float addition must round identically on both
    # sides for the byte-identity contract.
    labels = sorted(pipeline.class_errors)
    total_sq = sum(pipeline.class_errors[label].sq_sum for label in labels)
    total_abs = sum(pipeline.class_errors[label].abs_sum for label in labels)
    total_weight = sum(pipeline.class_errors[label].weight for label in labels)

    summary = {
        "workload": pipeline.workload_name,
        "seed": pipeline.seed,
        "population": detection["population"],
        "injected": detection["injected"],
        "flagged": detection["flagged"],
        "precision": detection["precision"],
        "recall": detection["recall"],
        "median_time_to_detect_instructions": _median(true_positive_ttds),
        "committed": len(commits),
        "label_accuracy": (
            len(correct) / len(commits) if commits else None
        ),
        "median_commit_instructions": _median(commit_ins),
        "prediction_rms_error": (
            (total_sq / total_weight) ** 0.5 if total_weight > 0 else None
        ),
        "prediction_mean_abs_error": (
            total_abs / total_weight if total_weight > 0 else None
        ),
        "events": pipeline.events_seen,
        "periods": pipeline.periods_seen,
        "windows": pipeline.windows_seen,
    }
    attribution = None
    if getattr(pipeline, "attributor", None) is not None:
        from repro.online.attribution import score_attribution

        attribution = score_attribution(records)

    return DetectionReport(
        summary=summary,
        per_class=per_class,
        requests=list(records),
        attribution=attribution,
    )
