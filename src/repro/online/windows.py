"""Incremental fixed-instruction windowing of a streaming counter feed.

Offline, :meth:`repro.kernel.tracker.RequestTrace.window_counters` resamples
a finished request's periods onto fixed instruction-count windows by linear
interpolation of the cumulative counters.  The streaming pipeline needs the
same view *while the request runs*, from period deltas arriving one at a
time, with O(1) state per request.  :class:`IncrementalWindower` does that:
each period's counters are apportioned linearly over the instruction span
it covers, and a full window is emitted every ``window_instructions``
retired instructions.

The hot path (:meth:`IncrementalWindower.feed_counters`) works on four bare
floats and emits ``(instructions, cycles, l2_refs, l2_misses)`` tuples —
the pipeline consumes thousands of periods per run and per-period dict
construction was a measurable share of its overhead.  :meth:`feed` wraps
the same arithmetic in the dict vocabulary for callers that prefer it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Counter fields carried through the windower, in canonical order.
COUNTER_FIELDS = ("instructions", "cycles", "l2_refs", "l2_misses")

#: ``metric name -> (numerator, denominator)`` indices into a counter tuple.
METRIC_INDICES = {
    "cpi": (1, 0),
    "l2_refs_per_ins": (2, 0),
    "l2_miss_per_ins": (3, 0),
    "l2_miss_ratio": (3, 2),
}

#: One emitted window: counter sums in :data:`COUNTER_FIELDS` order.
Window = Tuple[float, float, float, float]

#: Shared empty result: most periods complete no window, and allocating a
#: fresh list for each of those was a measurable share of streaming cost.
_NO_WINDOWS: List[Window] = []


def window_metric(window: Dict[str, float], metric: str) -> float:
    """One window's metric value from its counter sums.

    Mirrors :data:`repro.kernel.tracker.METRICS`; a zero denominator
    yields 0.0 (the same convention as ``RequestTrace.series``).
    """
    try:
        num_index, den_index = METRIC_INDICES[metric]
    except KeyError:
        raise ValueError(f"unknown metric {metric!r}") from None
    num = window[COUNTER_FIELDS[num_index]]
    den = window[COUNTER_FIELDS[den_index]]
    return num / den if den > 0 else 0.0


class IncrementalWindower:
    """Streams period counter deltas into fixed-instruction windows."""

    __slots__ = ("window_instructions", "_fill", "_carry", "windows_emitted")

    def __init__(self, window_instructions: float):
        if window_instructions <= 0:
            raise ValueError("window_instructions must be positive")
        self.window_instructions = float(window_instructions)
        self._fill = 0.0  # instructions accumulated in the open window
        self._carry = [0.0, 0.0, 0.0, 0.0]
        self.windows_emitted = 0

    def feed_counters(
        self,
        instructions: float,
        cycles: float,
        l2_refs: float,
        l2_misses: float,
    ) -> List[Window]:
        """Consume one period's counter deltas; return completed windows.

        The period's counters are spread linearly across the instruction
        span it covers (the incremental equivalent of interpolating the
        cumulative-counter curve at window edges).
        """
        carry = self._carry
        if instructions <= 0.0:
            # No instruction progress: fold the activity into the open
            # window without advancing the fill position.
            carry[1] += cycles
            carry[2] += l2_refs
            carry[3] += l2_misses
            return _NO_WINDOWS
        completed: Optional[List[Window]] = None
        window_instructions = self.window_instructions
        fill = self._fill
        consumed = 0.0
        while instructions - consumed > 0.0:
            room = window_instructions - fill
            remaining = instructions - consumed
            take = room if room < remaining else remaining
            fraction = take / instructions
            carry[0] += instructions * fraction
            carry[1] += cycles * fraction
            carry[2] += l2_refs * fraction
            carry[3] += l2_misses * fraction
            fill += take
            consumed += take
            # Tolerate float drift when a period lands exactly on an edge.
            if fill >= window_instructions - 1e-9:
                if completed is None:
                    completed = []
                completed.append(tuple(carry))
                self.windows_emitted += 1
                fill = 0.0
                carry[0] = carry[1] = carry[2] = carry[3] = 0.0
        self._fill = fill
        return _NO_WINDOWS if completed is None else completed

    def feed(self, counters: Dict[str, float]) -> List[Dict[str, float]]:
        """Dict-vocabulary wrapper around :meth:`feed_counters`."""
        return [
            dict(zip(COUNTER_FIELDS, window))
            for window in self.feed_counters(
                float(counters["instructions"]),
                float(counters["cycles"]),
                float(counters["l2_refs"]),
                float(counters["l2_misses"]),
            )
        ]

    def flush_counters(self) -> List[Window]:
        """Emit the trailing partial window if it is the request's only one.

        Mirrors the offline ``max(1, total // window)`` convention: a
        request shorter than one window still yields a single (short)
        window; otherwise the partial tail is dropped.
        """
        if self.windows_emitted == 0 and self._fill > 0.0:
            window = tuple(self._carry)
            self.windows_emitted += 1
            self._fill = 0.0
            self._carry = [0.0, 0.0, 0.0, 0.0]
            return [window]
        return []

    def flush(self) -> List[Dict[str, float]]:
        """Dict-vocabulary wrapper around :meth:`flush_counters`."""
        return [
            dict(zip(COUNTER_FIELDS, window))
            for window in self.flush_counters()
        ]

    # -- checkpointing ---------------------------------------------------

    def to_state(self) -> dict:
        return {
            "window_instructions": self.window_instructions,
            "fill": self._fill,
            "carry": dict(zip(COUNTER_FIELDS, self._carry)),
            "windows_emitted": self.windows_emitted,
        }

    @classmethod
    def from_state(cls, state: dict) -> "IncrementalWindower":
        windower = cls(float(state["window_instructions"]))
        windower._fill = float(state["fill"])
        windower._carry = [
            float(state["carry"][field]) for field in COUNTER_FIELDS
        ]
        windower.windows_emitted = int(state["windows_emitted"])
        return windower
