"""The ``repro-online`` command: streaming analysis of a simulated run.

Live mode attaches an :class:`~repro.online.pipeline.OnlinePipeline` to the
simulator's event stream as it runs::

    repro-online tpcc --requests 80 --faults lock_stall:0.2 --train 30
    repro-online tpcc --requests 60 --faults slowdown:0.15 \\
        --report report.json --checkpoint state.json --events-out run.jsonl

Replay mode re-processes a recorded event stream, optionally resuming from
a mid-stream checkpoint (decisions are byte-identical either way)::

    repro-online tpcc --events run.jsonl --restore state.json --report r.json
"""

from __future__ import annotations

import argparse
import sys

from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceCollector, load_events, save_events
from repro.online.checkpoint import load_checkpoint, save_checkpoint
from repro.online.pipeline import (
    SUBSCRIBED_KINDS,
    OnlineConfig,
    OnlinePipeline,
    train_identifier,
)
from repro.online.report import build_report
from repro.faults.schedule import parse_fault_schedule
from repro.workloads.registry import (
    SERVER_APPS,
    available_workloads,
    make_faulted_workload,
    make_workload,
)


def fault_spec(text: str) -> str:
    """argparse type for ``--faults``: validate the schedule grammar,
    keep the raw spec.  Malformed specs exit with a usage error naming
    the offending clause or option token."""
    try:
        parse_fault_schedule(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return text


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text!r}")
    return value


def _non_negative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text!r}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-online",
        description="Stream a simulated run through the online analysis "
        "pipeline (identification, prediction, anomaly detection)",
    )
    parser.add_argument("workload", help=f"one of {', '.join(SERVER_APPS)}")
    parser.add_argument(
        "--requests", type=_positive_int, default=60,
        help="requests to simulate in live mode (default 60)",
    )
    parser.add_argument("--concurrency", type=_positive_int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--faults", type=fault_spec, default=None, metavar="SPEC",
        help="inject ground-truth faults from a composable schedule, "
        "e.g. lock_stall:0.2 or 'gc_pause:0.2+cache_thrash:0.1@0-40' "
        "(clauses joined by +; options: @lo-hi window, %%kind=NAME / "
        "%%tenant=N targets, *N bursts; see docs/faults.md)",
    )
    parser.add_argument(
        "--attribute", action="store_true",
        help="classify the likely fault cause of each flagged request "
        "from its counter signature and score the attribution against "
        "injected ground truth in the report",
    )
    parser.add_argument(
        "--train", type=_non_negative_int, default=24, metavar="N",
        help="calibration requests (clean workload, offset seed) used to "
        "fit the signature bank; 0 disables the identification stage "
        "(default 24)",
    )
    parser.add_argument(
        "--window", type=float, default=100_000.0,
        help="pattern window in instructions (default 100000)",
    )
    parser.add_argument(
        "--quantile", type=float, default=0.9,
        help="adaptive anomaly threshold quantile in (0,1) (default 0.9)",
    )
    parser.add_argument(
        "--report", metavar="PATH",
        help="write the scored detection report as canonical JSON",
    )
    parser.add_argument(
        "--checkpoint", metavar="PATH",
        help="write a versioned pipeline checkpoint after the run",
    )
    parser.add_argument(
        "--events", metavar="PATH",
        help="replay a recorded obs JSONL stream instead of simulating",
    )
    parser.add_argument(
        "--restore", metavar="PATH",
        help="resume from a checkpoint before replaying (requires --events)",
    )
    parser.add_argument(
        "--events-out", metavar="PATH",
        help="record the live run's event stream as JSONL (for replay)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the online pipeline's metrics snapshot to this JSON file",
    )
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.restore and not args.events:
        parser.error("--restore requires --events (replay mode)")
    if args.events_out and args.events:
        parser.error("--events-out only applies to live runs")
    if not 0.0 < args.quantile < 1.0:
        parser.error("--quantile must be in (0, 1)")
    if args.window <= 0:
        parser.error("--window must be positive")
    if args.workload not in available_workloads():
        print(
            f"unknown workload {args.workload!r}; "
            f"available: {', '.join(available_workloads())}",
            file=sys.stderr,
        )
        return 2

    registry = MetricsRegistry()

    if args.events:
        events, _ = load_events(args.events)
        if args.restore:
            pipeline = load_checkpoint(args.restore, registry=registry)
        else:
            pipeline = _fresh_pipeline(args, registry)
        pipeline.process_events(events)
    else:
        pipeline = _fresh_pipeline(args, registry)
        workload = (
            make_faulted_workload(args.workload, args.faults)
            if args.faults
            else make_workload(args.workload)
        )
        # Dispatch-only unless the subscribed event stream is being kept
        # for export (--events-out needs the buffered records).
        collector = TraceCollector(
            capacity=None if args.events_out else 0, kinds=SUBSCRIBED_KINDS
        )
        collector.subscribe(pipeline.process_event)
        config = SimConfig(
            sampling=SamplingPolicy.interrupt(workload.sampling_period_us),
            num_requests=args.requests,
            concurrency=min(args.concurrency, args.requests),
            seed=args.seed,
            collector=collector,
        )
        ServerSimulator(workload, config).run()
        if args.events_out:
            save_events(collector, args.events_out)
            print(f"event stream written to {args.events_out}")

    report = build_report(pipeline)
    print(report.render())
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(report.to_json())
            fh.write("\n")
        print(f"report written to {args.report}")
    if args.checkpoint:
        save_checkpoint(pipeline, args.checkpoint)
        print(f"checkpoint written to {args.checkpoint}")
    if args.metrics_out:
        registry.write_json(
            args.metrics_out,
            extra={"workload": args.workload, "seed": args.seed},
        )
        print(f"metrics written to {args.metrics_out}")
    return 0


def _fresh_pipeline(args, registry) -> OnlinePipeline:
    config = OnlineConfig(
        window_instructions=float(args.window),
        anomaly_quantile=args.quantile,
        attribute=args.attribute,
    )
    identifier = None
    if args.train > 0:
        # The signature bank must come from unperturbed traffic, and from a
        # different seed than the streamed run (no training-set leakage).
        identifier = train_identifier(
            make_workload(args.workload),
            num_requests=args.train,
            seed=args.seed + 10_000,
            metric=config.identify_metric,
            window_instructions=config.window_instructions,
        )
    return OnlinePipeline(config=config, identifier=identifier, registry=registry)


if __name__ == "__main__":
    sys.exit(main())
