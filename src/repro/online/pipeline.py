"""The streaming online-analysis pipeline.

:class:`OnlinePipeline` subscribes to the simulator's structured event
stream (:class:`repro.obs.trace.TraceCollector`) and runs, incrementally
and with bounded per-request state, the paper's three "online" claims on
live traffic instead of post-hoc trace arrays:

1. **Incremental identification** — each completed fixed-instruction
   window extends the request's partial variation pattern; the pattern is
   matched against the signature bank (:class:`repro.core.identification.
   OnlineIdentifier`) and the match *commits* once the predicted label has
   been stable for ``commit_streak`` consecutive windows, recording how
   early (in instructions) the commitment happened (Figure 10, online).
2. **vaEWMA prediction** — every execution period feeds a per-request
   variable-aging EWMA (Equation 5); the one-step-ahead error is
   accumulated per request class and tracked in a
   :class:`~repro.obs.metrics.MetricsRegistry` (Figure 11, online).
3. **Streaming anomaly detection** — per semantic group (request kind),
   an :class:`~repro.core.centroids.IncrementalCentroid` maintains the
   running mean window pattern; a request whose mean absolute deviation
   from its group centroid exceeds an adaptive P-square quantile threshold
   is flagged, and flags are scored for precision / recall / time-to-detect
   against the injected-fault ground truth carried on the request spec
   (Figures 8-9, online, validated like Fournier et al.).

Determinism contract: processing is a pure function of the event stream
and the pipeline's initial state.  Checkpoint (:mod:`repro.online.
checkpoint`) and restore mid-stream, and every subsequent decision — and
the final report — is byte-identical to an uninterrupted run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.centroids import GroupCentroids
from repro.core.identification import OnlineIdentifier
from repro.core.prediction import VaEwma
from repro.core.quantile import OnlineQuantile
from repro.hardware.counters import SamplingContext, SamplingCostModel
from repro.online.windows import METRIC_INDICES, IncrementalWindower


#: Event kinds the pipeline consumes.  A live collector restricted to
#: these (``TraceCollector(kinds=SUBSCRIBED_KINDS)``) skips record
#: construction for the simulator's denser instrumentation events,
#: keeping streaming overhead proportional to the analysis itself.
SUBSCRIBED_KINDS = frozenset(
    {"run_start", "request_admitted", "period_sample", "request_completed"}
)

#: Bank size at which the per-window identification sweep switches from
#: the plain-Python accumulation to the vectorized
#: :class:`~repro.core.kernels.PrefixL1Sweeper`.  Below this, interpreter
#: arithmetic beats numpy dispatch; above it the O(bank) numpy update
#: wins.  Both paths produce bit-identical distances, so the threshold
#: never affects decisions.
SWEEP_MIN_BANK = 64


@dataclass(frozen=True)
class OnlineConfig:
    """Tuning knobs for the streaming pipeline (all deterministic)."""

    #: Fixed instruction window for patterns (identification + anomaly).
    window_instructions: float = 100_000.0
    #: Metric matched against the signature bank (the paper's choice:
    #: L2 references per instruction reflect inherent behavior).
    identify_metric: str = "l2_refs_per_ins"
    #: Metric predicted by the per-request vaEWMA.
    predict_metric: str = "cpi"
    #: Metric compared against group centroids.
    anomaly_metric: str = "cpi"
    #: Consecutive windows with a stable predicted label before the
    #: identification commits.
    commit_streak: int = 3
    #: Cap on the partial pattern length kept per request (bounded memory).
    max_windows: int = 256
    #: Cap on centroid length per group.
    centroid_max_windows: int = 512
    #: Quantile of the per-window anomaly-score stream used as threshold.
    anomaly_quantile: float = 0.9
    #: Multiplier on the quantile estimate (raise to trade recall for
    #: precision).
    anomaly_margin: float = 1.0
    #: Minimum observed windows before a request may be flagged.
    anomaly_min_windows: int = 2
    #: Minimum score observations in a group before flagging starts.
    anomaly_warmup: int = 24
    #: vaEWMA aging constant.
    ewma_alpha: float = 0.6
    #: Subtract the minimum per-sample observer cost from period counters
    #: (matching the offline trace compensation).
    compensate: bool = True
    #: Run the :class:`~repro.online.attribution.CauseAttributor` on
    #: flagged requests (opt-in: records, reports, and checkpoints gain
    #: attribution fields only when enabled, so every pre-attribution
    #: byte surface is unchanged at the default).
    attribute: bool = False

    def __post_init__(self):
        if self.window_instructions <= 0:
            raise ValueError("window_instructions must be positive")
        if self.commit_streak < 1:
            raise ValueError("commit_streak must be >= 1")
        if not 0.0 < self.anomaly_quantile < 1.0:
            raise ValueError("anomaly_quantile must be in (0, 1)")
        if self.anomaly_margin <= 0:
            raise ValueError("anomaly_margin must be positive")
        for metric in (self.identify_metric, self.predict_metric,
                       self.anomaly_metric):
            if metric not in METRIC_INDICES:
                raise ValueError(f"unknown metric {metric!r}")


class _OpenRequest:
    """Streaming state for one in-flight request (bounded)."""

    __slots__ = (
        "request_id",
        "kind",
        "injected_fault",
        "admitted_cycle",
        "windower",
        "pattern",
        "ident_dists",
        "windows",
        "streak_label",
        "streak",
        "committed_label",
        "commit_windows",
        "predictor",
        "dist_sum",
        "dist_windows",
        "flagged",
        "flag_windows",
        "flag_score",
        "feature_windows",
    )

    def __init__(self, request_id: int, kind: str, injected_fault, admitted_cycle,
                 windower: IncrementalWindower, predictor: VaEwma):
        self.request_id = request_id
        self.kind = kind
        self.injected_fault = injected_fault
        self.admitted_cycle = admitted_cycle
        self.windower = windower
        self.pattern: List[float] = []
        # Running per-signature prefix distances (a list on the Python
        # path, an ndarray under the vectorized sweeper); derived from
        # `pattern`, so not checkpointed — rebuilt on the first poll
        # after restore.
        self.ident_dists = None
        self.windows = 0
        self.streak_label: Optional[str] = None
        self.streak = 0
        self.committed_label: Optional[str] = None
        self.commit_windows: Optional[int] = None
        self.predictor = predictor
        self.dist_sum = 0.0
        self.dist_windows = 0
        self.flagged = False
        self.flag_windows: Optional[int] = None
        self.flag_score: Optional[float] = None
        # Per-window (cpi, refs_per_ins, miss_ratio) features, tracked
        # only when attribution is enabled (None otherwise, and then
        # absent from checkpoint state — the legacy byte surface).
        self.feature_windows: Optional[List[List[float]]] = None

    def to_state(self) -> dict:
        state = {
            "request_id": self.request_id,
            "kind": self.kind,
            "injected_fault": self.injected_fault,
            "admitted_cycle": self.admitted_cycle,
            "windower": self.windower.to_state(),
            "pattern": list(self.pattern),
            "windows": self.windows,
            "streak_label": self.streak_label,
            "streak": self.streak,
            "committed_label": self.committed_label,
            "commit_windows": self.commit_windows,
            "predictor": {
                "alpha": self.predictor.alpha,
                "unit_length": self.predictor.unit_length,
                "estimate": self.predictor._estimate,
            },
            "dist_sum": self.dist_sum,
            "dist_windows": self.dist_windows,
            "flagged": self.flagged,
            "flag_windows": self.flag_windows,
            "flag_score": self.flag_score,
        }
        if self.feature_windows is not None:
            state["feature_windows"] = [list(w) for w in self.feature_windows]
        return state

    @classmethod
    def from_state(cls, state: dict) -> "_OpenRequest":
        predictor = VaEwma(
            alpha=float(state["predictor"]["alpha"]),
            unit_length=float(state["predictor"]["unit_length"]),
        )
        predictor._estimate = state["predictor"]["estimate"]
        request = cls(
            request_id=int(state["request_id"]),
            kind=state["kind"],
            injected_fault=state["injected_fault"],
            admitted_cycle=state["admitted_cycle"],
            windower=IncrementalWindower.from_state(state["windower"]),
            predictor=predictor,
        )
        request.pattern = [float(v) for v in state["pattern"]]
        request.windows = int(state["windows"])
        request.streak_label = state["streak_label"]
        request.streak = int(state["streak"])
        request.committed_label = state["committed_label"]
        request.commit_windows = state["commit_windows"]
        request.dist_sum = float(state["dist_sum"])
        request.dist_windows = int(state["dist_windows"])
        request.flagged = bool(state["flagged"])
        request.flag_windows = state["flag_windows"]
        request.flag_score = state["flag_score"]
        if "feature_windows" in state:
            request.feature_windows = [
                [float(v) for v in window]
                for window in state["feature_windows"]
            ]
        return request


@dataclass
class _ClassErrors:
    """Per-class rolling prediction-error accumulator (length-weighted)."""

    n: int = 0
    abs_sum: float = 0.0
    sq_sum: float = 0.0
    weight: float = 0.0

    def add(self, error: float, length: float) -> None:
        self.n += 1
        self.abs_sum += abs(error) * length
        self.sq_sum += error * error * length
        self.weight += length

    def rms(self) -> Optional[float]:
        if self.weight <= 0:
            return None
        return (self.sq_sum / self.weight) ** 0.5

    def mean_abs(self) -> Optional[float]:
        if self.weight <= 0:
            return None
        return self.abs_sum / self.weight


class OnlinePipeline:
    """Event-driven streaming analysis over the simulator's trace stream.

    Use :meth:`process_event` as a :meth:`TraceCollector.subscribe`
    callback for live runs, or :meth:`process_events` to replay a recorded
    JSONL stream.  Events already covered by a restored checkpoint
    (``seq <= last_seq``) are skipped, so "restore then replay the whole
    stream" is safe and deterministic.
    """

    def __init__(
        self,
        config: Optional[OnlineConfig] = None,
        identifier: Optional[OnlineIdentifier] = None,
        registry=None,
        cost_model: Optional[SamplingCostModel] = None,
    ):
        self.config = config or OnlineConfig()
        self.identifier = identifier
        self.registry = registry
        self.cost_model = cost_model or SamplingCostModel()
        if self.config.attribute:
            from repro.online.attribution import CauseAttributor

            self.attributor: Optional[CauseAttributor] = CauseAttributor()
        else:
            self.attributor = None
        self.centroids = GroupCentroids(self.config.centroid_max_windows)
        self.quantiles: Dict[str, OnlineQuantile] = {}
        self.class_errors: Dict[str, _ClassErrors] = {}
        self.open: Dict[int, _OpenRequest] = {}
        self.records: List[dict] = []
        self.last_seq = -1
        self.events_seen = 0
        self.periods_seen = 0
        self.windows_seen = 0
        self.workload_name: Optional[str] = None
        self.seed: Optional[int] = None
        self._ik_cost = self.cost_model.minimum_cost(SamplingContext.IN_KERNEL)
        self._int_cost = self.cost_model.minimum_cost(SamplingContext.INTERRUPT)
        self._do_compensate = self.config.compensate
        # Bank rows for the incremental identification sweep, fetched on
        # first use (the identifier may be attached before it is fitted).
        self._prefix_rows: Optional[tuple] = None
        # Vectorized sweeper + labels, installed instead of the Python
        # accumulation when the bank reaches SWEEP_MIN_BANK rows.
        self._sweeper = None
        self._sweep_labels: Optional[List[Optional[str]]] = None
        # Metric selectors resolved once to counter-tuple indices.
        self._identify_metric = METRIC_INDICES[self.config.identify_metric]
        self._predict_metric = METRIC_INDICES[self.config.predict_metric]
        self._anomaly_metric = METRIC_INDICES[self.config.anomaly_metric]
        # Instruments resolved once: registry lookups are get-or-create
        # with name-collision checks, too heavy for the per-event path.
        if self.registry is not None:
            self._c_periods = self.registry.counter("online_periods")
            self._c_windows = self.registry.counter("online_windows")
            self._c_commits = self.registry.counter("online_commits")
            self._c_flags = self.registry.counter("online_flags")
            self._c_completed = self.registry.counter("online_requests_completed")
            self._h_pred_error = self.registry.histogram(
                "online_prediction_abs_error"
            )
            self._h_anomaly = self.registry.histogram("online_anomaly_score")
            self._h_commit_ins = self.registry.histogram(
                "online_commit_instructions"
            )

    # -- event intake ----------------------------------------------------

    def process_event(self, event) -> None:
        """Consume one :class:`~repro.obs.trace.ObsEvent` (idempotent by seq)."""
        if event.seq <= self.last_seq:
            return
        self.last_seq = event.seq
        self.events_seen += 1
        kind = event.kind
        if kind == "period_sample":
            self._on_period(event)
        elif kind == "request_admitted":
            self._on_admitted(event)
        elif kind == "request_completed":
            self._on_completed(event)
        elif kind == "run_start":
            self.workload_name = event.data.get("workload")
            self.seed = event.data.get("seed")

    def process_events(self, events) -> None:
        for event in events:
            self.process_event(event)

    # -- stage plumbing --------------------------------------------------

    def _on_admitted(self, event) -> None:
        config = self.config
        self.open[event.request_id] = _OpenRequest(
            request_id=event.request_id,
            kind=event.data.get("request_kind", "?"),
            injected_fault=event.data.get("injected_fault"),
            admitted_cycle=event.cycle,
            windower=IncrementalWindower(config.window_instructions),
            predictor=VaEwma(
                alpha=config.ewma_alpha,
                unit_length=config.window_instructions,
            ),
        )

    def _on_period(self, event) -> None:
        request = self.open.get(event.request_id)
        if request is None:  # stream attached mid-run; ignore strangers
            return
        self.periods_seen += 1
        if self.registry is not None:
            self._c_periods.inc()
        # Observer-effect compensation, inlined: this runs per period and
        # the call + tuple traffic of a helper was measurable.
        data = event.data
        instructions = float(data["instructions"])
        cycles = float(data["cycles"])
        l2_refs = float(data["l2_refs"])
        l2_misses = float(data["l2_misses"])
        if self._do_compensate:
            n_ik = float(data.get("injected_in_kernel", 0))
            n_int = float(data.get("injected_interrupt", 0))
            ik, it = self._ik_cost, self._int_cost
            instructions = max(
                1.0, instructions - n_ik * ik.instructions - n_int * it.instructions
            )
            cycles = max(1.0, cycles - n_ik * ik.cycles - n_int * it.cycles)
            l2_refs = max(0.0, l2_refs - n_ik * ik.l2_refs - n_int * it.l2_refs)
            l2_misses = max(
                0.0, l2_misses - n_ik * ik.l2_misses - n_int * it.l2_misses
            )
        counters = (instructions, cycles, l2_refs, l2_misses)

        # Stage 2: per-period vaEWMA prediction, scored one step ahead.
        if instructions > 0:
            num_index, den_index = self._predict_metric
            den = counters[den_index]
            value = counters[num_index] / den if den > 0 else 0.0
            predictor = request.predictor
            predicted = predictor._estimate
            if predicted is not None:
                error = predicted - value
                label = request.committed_label or request.kind
                accumulator = self.class_errors.get(label)
                if accumulator is None:
                    accumulator = self.class_errors[label] = _ClassErrors()
                accumulator.add(error, instructions)
                if self.registry is not None:
                    self._h_pred_error.observe(abs(error), weight=instructions)
            predictor.observe(value, instructions)

        # Stages 1 + 3 run per completed fixed-instruction window.
        for window in request.windower.feed_counters(
            instructions, cycles, l2_refs, l2_misses
        ):
            self._on_window(request, window)

    def _on_window(self, request: _OpenRequest, window: tuple) -> None:
        config = self.config
        self.windows_seen += 1
        window_index = request.windows
        request.windows += 1
        if self.registry is not None:
            self._c_windows.inc()

        # Stage 1: incremental identification until committed.  The
        # per-signature prefix distance grows with the pattern — one
        # O(bank) update per window, never a full re-sweep.
        if self.identifier is not None and request.committed_label is None:
            rows_penalty = self._prefix_rows
            if rows_penalty is None:
                rows_penalty = self._prefix_rows = self.identifier.prefix_rows()
                if len(rows_penalty[0]) >= SWEEP_MIN_BANK:
                    self._sweeper, self._sweep_labels = (
                        self.identifier.prefix_sweeper()
                    )
            rows, penalty = rows_penalty
            pattern = request.pattern
            appended = False
            if len(pattern) < config.max_windows:
                num_index, den_index = self._identify_metric
                den = window[den_index]
                value = window[num_index] / den if den > 0 else 0.0
                pattern.append(value)
                appended = True
            dists = request.ident_dists
            sweeper = self._sweeper
            if sweeper is not None:
                # Large bank: vectorized O(bank) kernel update per window
                # (bit-identical to the scalar accumulation below).
                if dists is None:
                    dists = request.ident_dists = sweeper.start(pattern)
                elif appended:
                    sweeper.extend(dists, len(pattern) - 1, value)
                best = int(np.argmin(dists))
            else:
                if dists is None:
                    # First poll, or first poll after a checkpoint
                    # restore: accumulate the whole pattern in the same
                    # element order the incremental updates use, so a
                    # restored run stays byte-identical to an
                    # uninterrupted one.
                    dists = request.ident_dists = [0.0] * len(rows)
                    for index, (values, length, _) in enumerate(rows):
                        total = 0.0
                        for w, x in enumerate(pattern):
                            if w < length:
                                d = x - values[w]
                                total += d if d >= 0.0 else -d
                            else:
                                total += penalty
                        dists[index] = total
                elif appended:
                    w = len(pattern) - 1
                    for index, (values, length, _) in enumerate(rows):
                        if w < length:
                            d = value - values[w]
                            dists[index] += d if d >= 0.0 else -d
                        else:
                            dists[index] += penalty
                best = 0
                best_distance = dists[0]
                for index in range(1, len(dists)):
                    if dists[index] < best_distance:
                        best_distance = dists[index]
                        best = index
            label = rows[best][2]
            if label == request.streak_label:
                request.streak += 1
            else:
                request.streak_label = label
                request.streak = 1
            if request.streak >= config.commit_streak:
                request.committed_label = label
                request.commit_windows = request.windows
                if self.registry is not None:
                    self._c_commits.inc()
                    self._h_commit_ins.observe(
                        request.windows * config.window_instructions
                    )

        # Stage 3: streaming centroid-deviation anomaly detection.
        num_index, den_index = self._anomaly_metric
        den = window[den_index]
        value = window[num_index] / den if den > 0 else 0.0
        centroid = self.centroids.group(request.kind)
        deviation = centroid.deviation(window_index, value)
        if deviation is not None:
            request.dist_sum += deviation
            request.dist_windows += 1
            score = request.dist_sum / request.dist_windows
            quantile = self.quantiles.get(request.kind)
            if quantile is None:
                quantile = self.quantiles[request.kind] = OnlineQuantile(
                    q=config.anomaly_quantile
                )
            threshold = quantile.estimate()
            if (
                not request.flagged
                and threshold is not None
                and quantile.count >= config.anomaly_warmup
                and request.dist_windows >= config.anomaly_min_windows
                and score > threshold * config.anomaly_margin
            ):
                request.flagged = True
                request.flag_windows = request.windows
                request.flag_score = score
                if self.registry is not None:
                    self._c_flags.inc()
            quantile.observe(score)
            if self.registry is not None:
                self._h_anomaly.observe(score)
        # The request's own window joins the group evidence *after* it was
        # scored against the pre-existing population.
        centroid.observe(window_index, value)

        # Cause attribution (opt-in): track per-window signature features
        # and fold unflagged windows into the kind's baseline.  A window
        # that just triggered the flag is already excluded — baselines
        # learn from traffic still believed healthy.
        attributor = self.attributor
        if attributor is not None:
            instructions = window[0]
            l2_refs = window[2]
            cpi = window[1] / instructions if instructions > 0 else 0.0
            refs_per_ins = window[2] / instructions if instructions > 0 else 0.0
            miss_ratio = window[3] / l2_refs if l2_refs > 0 else 0.0
            features = request.feature_windows
            if features is None:
                features = request.feature_windows = []
            if len(features) < config.max_windows:
                features.append([cpi, refs_per_ins, miss_ratio])
            if not request.flagged:
                attributor.observe_window(
                    request.kind, window_index, cpi, refs_per_ins, miss_ratio
                )

    def _on_completed(self, event) -> None:
        request = self.open.pop(event.request_id, None)
        if request is None:
            return
        # A request shorter than one window still contributes its partial
        # tail (mirroring the offline windowing convention).
        for window in request.windower.flush_counters():
            self._on_window(request, window)
        config = self.config
        record = {
            "request_id": request.request_id,
            "kind": request.kind,
            "injected_fault": request.injected_fault,
            "windows": request.windows,
            "instructions_observed": request.windows * config.window_instructions,
            "committed_label": request.committed_label,
            "commit_instructions": (
                request.commit_windows * config.window_instructions
                if request.commit_windows is not None
                else None
            ),
            "label_correct": (
                request.committed_label == request.kind
                if request.committed_label is not None
                else None
            ),
            "flagged": request.flagged,
            "time_to_detect_instructions": (
                request.flag_windows * config.window_instructions
                if request.flag_windows is not None
                else None
            ),
            "flag_score": request.flag_score,
            "latency_cycles": event.cycle - request.admitted_cycle,
        }
        if self.attributor is not None:
            record["attributed_cause"] = (
                self.attributor.classify(
                    request.kind, request.feature_windows or ()
                )
                if request.flagged
                else None
            )
        self.records.append(record)
        if self.registry is not None:
            self._c_completed.inc()

    # -- checkpointing ---------------------------------------------------

    def to_state(self) -> dict:
        """Full pipeline state as a JSON-ready dict (see checkpoint docs)."""
        state = {
            "config": asdict(self.config),
            "identifier": (
                self.identifier.to_state() if self.identifier is not None else None
            ),
            "centroids": self.centroids.to_state(),
            "quantiles": {
                key: self.quantiles[key].to_state()
                for key in sorted(self.quantiles)
            },
            "class_errors": {
                key: asdict(self.class_errors[key])
                for key in sorted(self.class_errors)
            },
            "open": [
                self.open[request_id].to_state()
                for request_id in sorted(self.open)
            ],
            "records": list(self.records),
            "last_seq": self.last_seq,
            "events_seen": self.events_seen,
            "periods_seen": self.periods_seen,
            "windows_seen": self.windows_seen,
            "workload_name": self.workload_name,
            "seed": self.seed,
        }
        if self.attributor is not None:
            state["attributor"] = self.attributor.to_state()
        return state

    @classmethod
    def from_state(cls, state: dict, registry=None) -> "OnlinePipeline":
        config = OnlineConfig(**state["config"])
        identifier = (
            OnlineIdentifier.from_state(state["identifier"])
            if state["identifier"] is not None
            else None
        )
        pipeline = cls(config=config, identifier=identifier, registry=registry)
        pipeline.centroids = GroupCentroids.from_state(state["centroids"])
        pipeline.quantiles = {
            key: OnlineQuantile.from_state(quantile_state)
            for key, quantile_state in state["quantiles"].items()
        }
        pipeline.class_errors = {
            key: _ClassErrors(**errors)
            for key, errors in state["class_errors"].items()
        }
        pipeline.open = {
            request_state["request_id"]: _OpenRequest.from_state(request_state)
            for request_state in state["open"]
        }
        pipeline.records = list(state["records"])
        pipeline.last_seq = int(state["last_seq"])
        pipeline.events_seen = int(state["events_seen"])
        pipeline.periods_seen = int(state["periods_seen"])
        pipeline.windows_seen = int(state["windows_seen"])
        pipeline.workload_name = state["workload_name"]
        pipeline.seed = state["seed"]
        if pipeline.attributor is not None and "attributor" in state:
            from repro.online.attribution import CauseAttributor

            pipeline.attributor = CauseAttributor.from_state(
                state["attributor"]
            )
        return pipeline


def train_identifier(
    workload,
    num_requests: int = 30,
    seed: int = 9001,
    metric: str = "l2_refs_per_ins",
    window_instructions: float = 100_000.0,
    sampling=None,
    concurrency: int = 8,
) -> OnlineIdentifier:
    """Fit an :class:`OnlineIdentifier` from a clean calibration run.

    The signature bank must be built from *unperturbed* traffic, so pass
    the underlying workload (not a fault-injecting wrapper).
    """
    from repro.kernel.sampling import SamplingPolicy
    from repro.kernel.simulator import ServerSimulator, SimConfig

    config = SimConfig(
        sampling=sampling
        or SamplingPolicy.interrupt(workload.sampling_period_us),
        num_requests=num_requests,
        concurrency=min(concurrency, num_requests),
        seed=seed,
    )
    result = ServerSimulator(workload, config).run()
    identifier = OnlineIdentifier(
        metric=metric, window_instructions=window_instructions, seed=seed
    )
    return identifier.fit(result.traces)
