"""Streaming online-analysis runtime over the simulator's event stream.

Everything in :mod:`repro.core` operates on *finished* request traces; this
package runs the paper's online claims the way a production server would —
incrementally, on live per-request sample events, with bounded memory:

* :mod:`repro.online.windows` — incremental fixed-instruction windowing of
  the streaming counter feed;
* :mod:`repro.online.pipeline` — the three-stage pipeline (prefix
  identification with commit tracking, per-class vaEWMA prediction error,
  centroid/quantile anomaly detection scored against injected faults);
* :mod:`repro.online.checkpoint` — versioned JSON snapshots with a
  byte-identical restore contract;
* :mod:`repro.online.report` — the scored detection report;
* :mod:`repro.online.cli` — the ``repro-online`` entry point.
"""

from repro.online.checkpoint import (
    checkpoint_from_json,
    checkpoint_to_json,
    load_checkpoint,
    save_checkpoint,
)
from repro.online.pipeline import OnlineConfig, OnlinePipeline, train_identifier
from repro.online.report import DetectionReport, build_report
from repro.online.windows import IncrementalWindower, window_metric

__all__ = [
    "DetectionReport",
    "IncrementalWindower",
    "OnlineConfig",
    "OnlinePipeline",
    "build_report",
    "checkpoint_from_json",
    "checkpoint_to_json",
    "load_checkpoint",
    "save_checkpoint",
    "train_identifier",
    "window_metric",
]
