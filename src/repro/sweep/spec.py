"""Sweep specifications: the scenario grid and its deterministic expansion.

A :class:`SweepSpec` declares a grid over workloads x sampling policies x
seeds x fault mixes x tier placements, plus the fixed run settings every
scenario shares (request count, concurrency, core count, online
analysis).  :meth:`SweepSpec.expand` turns it into an ordered list of
self-contained :class:`Scenario` descriptions with stable human-readable
ids; ``include`` / ``exclude`` rules prune the cross product explicitly
instead of burying special cases in experiment code.

Everything here is canonical-JSON serializable, so a manifest can embed
the spec and a resumed sweep re-plans bit-identically: same axis order,
same scenario ids, same content keys.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Tuple

from repro.workloads.registry import available_workloads

__all__ = [
    "AXES",
    "NO_FAULTS",
    "SINGLE_PLACEMENT",
    "Scenario",
    "SweepSpec",
    "canonical_json",
    "content_key",
    "parse_placement",
]

#: The grid axes, in expansion (itertools.product) order.
AXES = ("workload", "sampling", "seed", "faults", "placement", "arrivals",
        "dispatch")

#: Fault-mix axis value meaning "no injection".
NO_FAULTS = "none"

#: Placement axis value meaning "every tier on one machine".
SINGLE_PLACEMENT = "single"

#: Arrivals axis value meaning "the paper's closed generative loop".
CLOSED_ARRIVALS = "closed"

#: Dispatch axis value meaning "historical per-machine round-robin".
DEFAULT_DISPATCH = "rr"

SCENARIO_FORMAT = "repro-sweep-scenario"
SCENARIO_VERSION = 1


def canonical_json(payload) -> str:
    """The repo-wide canonical serialization (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_key(payload) -> str:
    """Stable content hash of a JSON-serializable payload."""
    digest = hashlib.blake2b(canonical_json(payload).encode(), digest_size=16)
    return digest.hexdigest()


def parse_placement(text: str) -> Tuple[int, Optional[Dict[str, int]]]:
    """Parse a tier-placement spec into (num_machines, tier -> machine).

    ``single`` keeps every tier on one machine (``(1, None)``);
    ``cluster:<N>:<tier>=<m>[,<tier>=<m>...]`` spreads tiers over an
    ``N``-machine cluster (tiers not listed stay on machine 0).
    """
    if text == SINGLE_PLACEMENT:
        return 1, None
    head, sep, rest = text.partition(":")
    if head != "cluster" or not sep:
        raise ValueError(
            f"unknown placement spec {text!r}; expected 'single' or "
            "'cluster:<machines>:<tier>=<machine>,...'"
        )
    count_text, sep, assignments = rest.partition(":")
    try:
        machines = int(count_text)
    except ValueError:
        raise ValueError(f"bad machine count in placement spec {text!r}") from None
    if machines < 2:
        raise ValueError(f"cluster placement needs >= 2 machines, got {text!r}")
    if not sep or not assignments:
        raise ValueError(f"cluster placement {text!r} assigns no tiers")
    placement: Dict[str, int] = {}
    for part in assignments.split(","):
        tier, eq, machine_text = part.partition("=")
        if not eq or not tier:
            raise ValueError(f"bad tier assignment {part!r} in {text!r}")
        try:
            machine = int(machine_text)
        except ValueError:
            raise ValueError(f"bad machine index {machine_text!r} in {text!r}") from None
        if not 0 <= machine < machines:
            raise ValueError(
                f"machine {machine} out of range for {machines}-machine "
                f"cluster in {text!r}"
            )
        if tier in placement:
            raise ValueError(f"tier {tier!r} assigned twice in {text!r}")
        placement[tier] = machine
    return machines, placement


def _validate_sampling(text: str) -> None:
    from repro.cli import parse_sampling

    parse_sampling(text)


def _validate_faults(text: str) -> None:
    if text != NO_FAULTS:
        from repro.faults.schedule import parse_fault_schedule

        parse_fault_schedule(text)


def _validate_arrivals(text: str) -> None:
    from repro.traffic import parse_arrivals

    parse_arrivals(text)


def _validate_dispatch(text: str) -> None:
    from repro.traffic import parse_dispatch

    parse_dispatch(text)


@dataclass(frozen=True)
class Scenario:
    """One self-contained point of the grid.

    Carries both the axis values and the shared run settings, so a
    scenario executes identically whether launched by the sweep executor,
    a fork worker, or a differential test reconstructing it by hand.
    """

    workload: str
    sampling: str
    seed: int
    faults: str = NO_FAULTS
    placement: str = SINGLE_PLACEMENT
    arrivals: str = CLOSED_ARRIVALS
    dispatch: str = DEFAULT_DISPATCH
    requests: int = 8
    concurrency: int = 4
    cores: int = 4
    online: bool = False
    train: int = 0
    attribute: bool = False

    def __post_init__(self):
        if self.attribute and not self.online:
            raise ValueError(
                "attribute=True needs online=True (cause attribution runs "
                "inside the online pipeline)"
            )
        if self.workload not in available_workloads():
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"available: {available_workloads()}"
            )
        _validate_sampling(self.sampling)
        _validate_faults(self.faults)
        parse_placement(self.placement)
        _validate_arrivals(self.arrivals)
        _validate_dispatch(self.dispatch)
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.cores not in (1, 4):
            raise ValueError(f"cores must be 1 or 4, got {self.cores}")
        if self.train < 0:
            raise ValueError(f"train must be >= 0, got {self.train}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an int, got {self.seed!r}")

    @property
    def _default_traffic(self) -> bool:
        return (
            self.arrivals == CLOSED_ARRIVALS
            and self.dispatch == DEFAULT_DISPATCH
        )

    @property
    def scenario_id(self) -> str:
        """Readable deterministic id, unique within one spec's grid.

        The traffic axes appear only when off their defaults, so every
        pre-traffic-layer id (and manifest referencing one) is unchanged.
        """
        parts = [
            self.workload,
            self.sampling,
            f"seed{self.seed}",
            self.faults,
            self.placement,
        ]
        if not self._default_traffic:
            parts.extend((self.arrivals, self.dispatch))
        if self.attribute:
            parts.append("attr")
        return "~".join(parts)

    @property
    def content_key(self) -> str:
        """Content hash over *all* fields — the cross-sweep cache key."""
        payload = {
            "format": SCENARIO_FORMAT,
            "version": SCENARIO_VERSION,
        }
        payload.update(self.to_dict())
        return content_key(payload)

    def to_dict(self) -> Dict:
        """Axis values + run settings; traffic axes only off-default.

        Omitting default traffic axes keeps the content keys (and hence
        the cross-sweep cache and the golden corpus bytes) of every
        pre-traffic-layer scenario stable; ``from_dict`` fills the
        defaults back in.
        """
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        if self.arrivals == CLOSED_ARRIVALS:
            del payload["arrivals"]
        if self.dispatch == DEFAULT_DISPATCH:
            del payload["dispatch"]
        # Attribution, like the traffic axes, appears only when enabled
        # so pre-attribution content keys and goldens keep their bytes.
        if not self.attribute:
            del payload["attribute"]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "Scenario":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown scenario fields: {unknown}")
        return cls(**payload)


def _matches(combo: Dict, rule: Dict) -> bool:
    return all(combo.get(axis) == value for axis, value in rule.items())


def _validate_rule(rule: Dict, where: str) -> Dict:
    if not isinstance(rule, dict) or not rule:
        raise ValueError(f"{where} rules must be non-empty axis dicts, got {rule!r}")
    unknown = sorted(set(rule) - set(AXES))
    if unknown:
        raise ValueError(f"{where} rule uses unknown axes {unknown}; valid: {AXES}")
    return dict(rule)


def _unique(values, axis: str) -> tuple:
    values = tuple(values)
    if not values:
        raise ValueError(f"axis {axis!r} is empty")
    if len(set(values)) != len(values):
        raise ValueError(f"axis {axis!r} contains duplicates: {values}")
    return values


@dataclass(frozen=True)
class SweepSpec:
    """A declared grid of scenarios plus shared run settings.

    ``include`` / ``exclude`` are lists of partial axis dicts
    (e.g. ``{"workload": "tpcc", "faults": "none"}``): a combination
    survives expansion iff it matches at least one ``include`` rule (when
    any are given) and matches no ``exclude`` rule.
    """

    name: str
    workloads: tuple
    sampling: tuple
    seeds: tuple
    faults: tuple = (NO_FAULTS,)
    placements: tuple = (SINGLE_PLACEMENT,)
    arrivals: tuple = (CLOSED_ARRIVALS,)
    dispatch: tuple = (DEFAULT_DISPATCH,)
    requests: int = 8
    concurrency: int = 4
    cores: int = 4
    online: bool = False
    train: int = 0
    attribute: bool = False
    include: tuple = ()
    exclude: tuple = ()

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"spec needs a non-empty name, got {self.name!r}")
        object.__setattr__(self, "workloads", _unique(self.workloads, "workloads"))
        object.__setattr__(self, "sampling", _unique(self.sampling, "sampling"))
        object.__setattr__(self, "seeds", _unique(self.seeds, "seeds"))
        object.__setattr__(self, "faults", _unique(self.faults, "faults"))
        object.__setattr__(self, "placements", _unique(self.placements, "placements"))
        object.__setattr__(self, "arrivals", _unique(self.arrivals, "arrivals"))
        object.__setattr__(self, "dispatch", _unique(self.dispatch, "dispatch"))
        object.__setattr__(
            self,
            "include",
            tuple(_validate_rule(r, "include") for r in self.include),
        )
        object.__setattr__(
            self,
            "exclude",
            tuple(_validate_rule(r, "exclude") for r in self.exclude),
        )
        # Every axis value is validated eagerly by building one probe
        # scenario per value, so a bad spec fails at plan time, not ten
        # scenarios into a sweep.
        self.expand()

    def expand(self) -> List[Scenario]:
        """Deterministic plan: the pruned cross product, in axis order."""
        scenarios: List[Scenario] = []
        for (
            workload, sampling, seed, faults, placement, arrivals, dispatch
        ) in itertools.product(
            self.workloads, self.sampling, self.seeds, self.faults,
            self.placements, self.arrivals, self.dispatch,
        ):
            combo = {
                "workload": workload,
                "sampling": sampling,
                "seed": seed,
                "faults": faults,
                "placement": placement,
                "arrivals": arrivals,
                "dispatch": dispatch,
            }
            if self.include and not any(_matches(combo, r) for r in self.include):
                continue
            if any(_matches(combo, r) for r in self.exclude):
                continue
            scenarios.append(
                Scenario(
                    workload=workload,
                    sampling=sampling,
                    seed=seed,
                    faults=faults,
                    placement=placement,
                    arrivals=arrivals,
                    dispatch=dispatch,
                    requests=self.requests,
                    concurrency=self.concurrency,
                    cores=self.cores,
                    online=self.online,
                    train=self.train,
                    attribute=self.attribute,
                )
            )
        if not scenarios:
            raise ValueError(
                f"spec {self.name!r} expands to zero scenarios "
                "(include/exclude rules pruned the whole grid)"
            )
        return scenarios

    @property
    def spec_key(self) -> str:
        """Content hash of the spec (manifest/spec mismatch detection)."""
        return content_key(self.to_dict())

    def to_dict(self) -> Dict:
        payload = {
            "name": self.name,
            "workloads": list(self.workloads),
            "sampling": list(self.sampling),
            "seeds": list(self.seeds),
            "faults": list(self.faults),
            "placements": list(self.placements),
            "requests": self.requests,
            "concurrency": self.concurrency,
            "cores": self.cores,
            "online": self.online,
            "train": self.train,
            "include": [dict(r) for r in self.include],
            "exclude": [dict(r) for r in self.exclude],
        }
        # Traffic axes appear only off-default so that the spec_key of
        # every pre-traffic-layer spec (and its manifest) stays stable.
        if self.arrivals != (CLOSED_ARRIVALS,):
            payload["arrivals"] = list(self.arrivals)
        if self.dispatch != (DEFAULT_DISPATCH,):
            payload["dispatch"] = list(self.dispatch)
        if self.attribute:
            payload["attribute"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "SweepSpec":
        if not isinstance(payload, dict):
            raise ValueError(f"sweep spec must be a JSON object, got {payload!r}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown sweep spec fields: {unknown}")
        if "name" not in payload:
            raise ValueError("sweep spec needs a 'name'")
        kwargs = dict(payload)
        for axis in (
            "workloads", "sampling", "seeds", "faults", "placements",
            "arrivals", "dispatch",
        ):
            if axis in kwargs:
                kwargs[axis] = tuple(kwargs[axis])
        for rules in ("include", "exclude"):
            if rules in kwargs:
                kwargs[rules] = tuple(kwargs[rules])
        return cls(**kwargs)

    @classmethod
    def from_json_file(cls, path: str) -> "SweepSpec":
        with open(path) as fh:
            try:
                payload = json.load(fh)
            except ValueError as error:
                raise ValueError(f"malformed sweep spec {path!r}: {error}") from None
        return cls.from_dict(payload)
