"""Sharded, resumable scenario-sweep orchestration.

Declare a grid (:class:`SweepSpec`), expand it into deterministic
scenarios, execute them across forked shards with per-scenario timeout /
retry / quarantine (:func:`run_sweep`), persist progress in a versioned
canonical-JSON manifest (:class:`SweepManifest`) that survives ``SIGKILL``
with byte-identical resumed results, and aggregate everything into a
:class:`SweepReport`.  ``repro-sweep`` is the CLI; ``sweep`` the
repro-experiments id.
"""

from repro.sweep.cache import ScenarioCache, default_scenario_cache_path
from repro.sweep.executor import SweepOptions, run_sweep
from repro.sweep.golden import golden_path, golden_scenario, regenerate_golden
from repro.sweep.manifest import (
    MANIFEST_FORMAT,
    MANIFEST_VERSION,
    SweepManifest,
)
from repro.sweep.report import SweepReport, build_report
from repro.sweep.scenario import result_to_json, run_scenario
from repro.sweep.spec import Scenario, SweepSpec

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "Scenario",
    "ScenarioCache",
    "SweepManifest",
    "SweepOptions",
    "SweepReport",
    "SweepSpec",
    "build_report",
    "default_scenario_cache_path",
    "golden_path",
    "golden_scenario",
    "regenerate_golden",
    "result_to_json",
    "run_scenario",
    "run_sweep",
]
