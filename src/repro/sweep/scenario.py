"""Single-scenario execution: one grid point, end to end.

:func:`run_scenario` is the worker function the sweep executor runs
(in-process or in a forked shard); it is also the reference semantics the
differential suite holds the orchestrator to — the same scenario built by
hand from :class:`~repro.kernel.simulator.ServerSimulator` and
:class:`~repro.online.pipeline.OnlinePipeline` must serialize to the very
same bytes.  The orchestration layer above therefore adds zero observer
effect: sharding, retries, caching, and kill/resume can only change *when*
a scenario runs, never *what* it produces.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.hardware.platform import (
    WOODCREST,
    cluster_machine,
    serial_machine,
)
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceCollector
from repro.online.pipeline import (
    SUBSCRIBED_KINDS,
    OnlineConfig,
    OnlinePipeline,
    train_identifier,
)
from repro.online.report import build_report
from repro.sweep.spec import (
    NO_FAULTS,
    Scenario,
    canonical_json,
    parse_placement,
)
from repro.workloads.registry import make_faulted_workload, make_workload

__all__ = [
    "RESULT_FORMAT",
    "RESULT_VERSION",
    "build_machine",
    "build_sim_config",
    "build_traffic",
    "result_to_json",
    "run_scenario",
    "validate_result_document",
]

RESULT_FORMAT = "repro-sweep-result"
RESULT_VERSION = 1

#: Training runs must not share a seed with the swept run (no training-set
#: leakage); same offset convention as the repro-online CLI.
TRAIN_SEED_OFFSET = 10_000


def build_machine(scenario: Scenario):
    """The machine (and tier placement) a scenario's placement spec names."""
    machines, tier_placement = parse_placement(scenario.placement)
    if tier_placement is not None:
        return cluster_machine(num_machines=machines), tier_placement
    return (WOODCREST if scenario.cores == 4 else serial_machine()), None


def build_traffic(scenario: Scenario):
    """The :class:`TrafficConfig` a scenario's traffic axes describe.

    Returns ``None`` at the default axes (closed loop, round-robin) so the
    simulator takes the legacy path and the golden corpus stays
    byte-identical.
    """
    if scenario._default_traffic:
        return None
    from repro.traffic import TrafficConfig, parse_arrivals, parse_dispatch

    return TrafficConfig(
        arrivals=parse_arrivals(scenario.arrivals),
        dispatch=parse_dispatch(scenario.dispatch),
    )


def build_sim_config(scenario: Scenario, collector=None) -> SimConfig:
    """The :class:`SimConfig` a scenario describes (pure, no side effects)."""
    from repro.cli import parse_sampling

    machine, tier_placement = build_machine(scenario)
    return SimConfig(
        machine=machine,
        sampling=parse_sampling(scenario.sampling),
        num_requests=scenario.requests,
        concurrency=min(scenario.concurrency, scenario.requests),
        seed=scenario.seed,
        tier_placement=tier_placement,
        collector=collector,
        traffic=build_traffic(scenario),
    )


def _build_pipeline(scenario: Scenario) -> OnlinePipeline:
    identifier = None
    if scenario.train > 0:
        # The signature bank must come from unperturbed traffic.
        identifier = train_identifier(
            make_workload(scenario.workload),
            num_requests=scenario.train,
            seed=scenario.seed + TRAIN_SEED_OFFSET,
        )
    if scenario.attribute:
        return OnlinePipeline(
            identifier=identifier, config=OnlineConfig(attribute=True)
        )
    return OnlinePipeline(identifier=identifier)


def run_scenario(scenario: Scenario) -> Dict:
    """Execute one scenario and return its canonical result document.

    The document is a pure function of the scenario description: workload
    generation, simulation, metrics registration, and (optionally) the
    streaming online pipeline all run from the scenario's seed with no
    wall-clock or filesystem dependence.
    """
    workload = (
        make_faulted_workload(scenario.workload, scenario.faults)
        if scenario.faults != NO_FAULTS
        else make_workload(scenario.workload)
    )
    pipeline: Optional[OnlinePipeline] = None
    collector = None
    if scenario.online:
        pipeline = _build_pipeline(scenario)
        collector = TraceCollector(capacity=0, kinds=SUBSCRIBED_KINDS)
        collector.subscribe(pipeline.process_event)
    config = build_sim_config(scenario, collector=collector)
    result = ServerSimulator(workload, config).run()

    registry = MetricsRegistry()
    result.register_metrics(registry)

    cpis = result.request_cpis()
    busy = float(result.busy_cycles_per_core.sum())
    overhead = result.sampler_stats.overhead_cycles(config.cost_model)
    injected = sum(
        1
        for trace in result.traces
        if trace.spec.metadata.get("injected_fault") is not None
    )
    online = None
    if pipeline is not None:
        report = build_report(pipeline)
        online = {
            "summary": report.summary,
            "per_class": report.per_class,
            "requests": report.requests,
        }
        # Attribution scoring appears only when the axis is enabled so
        # detection-only result documents keep their pinned bytes.
        if report.attribution is not None:
            online["attribution"] = report.attribution
    document = {
        "format": RESULT_FORMAT,
        "version": RESULT_VERSION,
        "scenario": scenario.to_dict(),
        "scenario_id": scenario.scenario_id,
        "summary": {
            "requests": len(result.traces),
            "wall_cycles": float(result.wall_cycles),
            "busy_cycles": busy,
            "total_samples": int(result.sampler_stats.total_samples),
            "overhead_cycles": float(overhead),
            "overhead_fraction": float(overhead) / busy if busy > 0 else 0.0,
            "mean_cpi": float(cpis.mean()),
            "p90_cpi": float(np.percentile(cpis, 90)),
            "injected": injected,
        },
        "metrics": registry.snapshot(),
        "online": online,
    }
    # Latency appears only for open-loop scenarios, leaving the bytes of
    # every closed-loop (golden-pinned) result document untouched.
    if result.latency is not None:
        document["latency"] = result.latency.summary()
        document["summary"]["requests_shed"] = int(result.requests_shed)
    return document


def result_to_json(document: Dict) -> str:
    """Canonical serialization of a scenario result document."""
    return canonical_json(document)


def validate_result_document(document, scenario_id: Optional[str] = None) -> Dict:
    """Loudly check a (cached or persisted) result document's envelope."""
    if not isinstance(document, dict):
        raise ValueError(f"scenario result must be an object, got {document!r}")
    if document.get("format") != RESULT_FORMAT:
        raise ValueError(
            f"not a {RESULT_FORMAT} document: format={document.get('format')!r}"
        )
    if document.get("version") != RESULT_VERSION:
        raise ValueError(
            f"unsupported {RESULT_FORMAT} version {document.get('version')!r} "
            f"(supported: {RESULT_VERSION})"
        )
    if scenario_id is not None and document.get("scenario_id") != scenario_id:
        raise ValueError(
            f"result document is for scenario {document.get('scenario_id')!r}, "
            f"expected {scenario_id!r}"
        )
    return document
