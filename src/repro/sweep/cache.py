"""Cross-sweep scenario-result cache.

Same content-keyed, atomically-persisted discipline as the distance
engine's :class:`~repro.core.distengine.DistanceCache` (both specialize
:class:`~repro.core.distengine.ContentCache`), but the value is a whole
scenario result document and the key is the scenario's content hash over
*all* of its fields.  Two sweeps sharing scenarios — a widened grid, a
re-run with extra seeds — therefore skip the overlap entirely, and
because the cached document is the exact bytes-for-bytes payload
``run_scenario`` produced, cache hits preserve the sweep's byte-identity
contract.
"""

from __future__ import annotations

import os

from repro.core.distengine import ContentCache
from repro.sweep.scenario import validate_result_document

__all__ = ["ScenarioCache", "default_scenario_cache_path"]


def default_scenario_cache_path(
    directory: str = os.path.join("results", ".cache"),
) -> str:
    """The conventional on-disk location for a persistent scenario cache."""
    return os.path.join(directory, "scenarios.json")


class ScenarioCache(ContentCache):
    """scenario content key -> canonical scenario result document."""

    @staticmethod
    def _decode(value):
        # Foreign documents in the entries dict mean the file is not a
        # scenario cache; treat as corrupt (ContentCache.load starts empty).
        return validate_result_document(value)

    @staticmethod
    def _encode(value):
        return validate_result_document(value)
