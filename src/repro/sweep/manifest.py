"""Versioned sweep manifests: durable, resumable progress documents.

A manifest is the single source of truth for a sweep in flight: the
embedded spec (so resume needs nothing but the manifest), the planned
scenario order, and one entry per scenario — ``pending``, ``done`` (with
its full result document), or ``quarantined`` (with the error that
exhausted its retries).  Serialization is canonical JSON under the same
discipline as ``repro-online-checkpoint``: a versioned envelope, loud
failure on foreign or future documents, and content that depends only on
*what* completed, never on completion order — so a sweep killed mid-run
and resumed produces a manifest byte-identical to an uninterrupted one.

Saves are atomic (temp file + rename): a ``SIGKILL`` between scenarios
leaves either the previous manifest or the new one, never a torn file.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional

from repro.sweep.scenario import validate_result_document
from repro.sweep.spec import Scenario, SweepSpec, canonical_json

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "STATUS_DONE",
    "STATUS_PENDING",
    "STATUS_QUARANTINED",
    "SweepManifest",
]

MANIFEST_FORMAT = "repro-sweep-manifest"
MANIFEST_VERSION = 1

STATUS_PENDING = "pending"
STATUS_DONE = "done"
STATUS_QUARANTINED = "quarantined"
_STATUSES = (STATUS_PENDING, STATUS_DONE, STATUS_QUARANTINED)


def _fresh_entry() -> Dict:
    return {"status": STATUS_PENDING, "attempts": 0, "error": None, "result": None}


class SweepManifest:
    """Plan + progress of one sweep, keyed by scenario id."""

    def __init__(self, spec: SweepSpec, scenarios: Dict[str, Dict], order: List[str]):
        self.spec = spec
        self.scenarios = scenarios
        self.order = list(order)

    # -- planning --------------------------------------------------------

    @classmethod
    def plan(cls, spec: SweepSpec) -> "SweepManifest":
        """A fresh manifest with every scenario of the spec pending."""
        expanded = spec.expand()
        order = [s.scenario_id for s in expanded]
        if len(set(order)) != len(order):
            raise ValueError(f"spec {spec.name!r} produced duplicate scenario ids")
        return cls(spec, {sid: _fresh_entry() for sid in order}, order)

    def scenario_objects(self) -> Dict[str, Scenario]:
        """Reconstruct the Scenario for every id (expansion is deterministic)."""
        return {s.scenario_id: s for s in self.spec.expand()}

    # -- progress --------------------------------------------------------

    def ids_with_status(self, status: str) -> List[str]:
        return [sid for sid in self.order if self.scenarios[sid]["status"] == status]

    def pending_ids(self) -> List[str]:
        return self.ids_with_status(STATUS_PENDING)

    def counts(self) -> Dict[str, int]:
        counts = {status: 0 for status in _STATUSES}
        for entry in self.scenarios.values():
            counts[entry["status"]] += 1
        counts["planned"] = len(self.order)
        return counts

    @property
    def complete(self) -> bool:
        """True when no scenario is pending (quarantined counts as settled)."""
        return not self.pending_ids()

    def result(self, scenario_id: str) -> Dict:
        entry = self.scenarios[scenario_id]
        if entry["status"] != STATUS_DONE:
            raise ValueError(
                f"scenario {scenario_id!r} has no result (status {entry['status']!r})"
            )
        return entry["result"]

    def mark_done(self, scenario_id: str, result: Dict, attempts: int = 1) -> None:
        validate_result_document(result, scenario_id)
        self.scenarios[scenario_id] = {
            "status": STATUS_DONE,
            "attempts": int(attempts),
            "error": None,
            "result": result,
        }

    def mark_quarantined(self, scenario_id: str, attempts: int, error: str) -> None:
        self.scenarios[scenario_id] = {
            "status": STATUS_QUARANTINED,
            "attempts": int(attempts),
            "error": str(error),
            "result": None,
        }

    def release_quarantined(self) -> List[str]:
        """Return quarantined scenarios to pending (``resume --retry-quarantined``)."""
        released = self.ids_with_status(STATUS_QUARANTINED)
        for sid in released:
            self.scenarios[sid] = _fresh_entry()
        return released

    # -- serialization ---------------------------------------------------

    def to_payload(self) -> Dict:
        return {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "spec": self.spec.to_dict(),
            "spec_key": self.spec.spec_key,
            "order": self.order,
            "scenarios": self.scenarios,
        }

    def to_json(self) -> str:
        """Canonical bytes: a pure function of the spec and what completed."""
        return canonical_json(self.to_payload()) + "\n"

    @classmethod
    def from_payload(cls, payload) -> "SweepManifest":
        if not isinstance(payload, dict):
            raise ValueError(f"manifest must be a JSON object, got {payload!r}")
        if payload.get("format") != MANIFEST_FORMAT:
            raise ValueError(
                f"not a {MANIFEST_FORMAT} document: format={payload.get('format')!r}"
            )
        if payload.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported {MANIFEST_FORMAT} version {payload.get('version')!r} "
                f"(supported: {MANIFEST_VERSION})"
            )
        spec = SweepSpec.from_dict(payload.get("spec"))
        if payload.get("spec_key") != spec.spec_key:
            raise ValueError(
                "manifest spec_key does not match its embedded spec "
                "(corrupt or hand-edited manifest)"
            )
        order = payload.get("order")
        planned = [s.scenario_id for s in spec.expand()]
        if order != planned:
            raise ValueError(
                "manifest scenario order does not match the spec's expansion "
                "(corrupt manifest or incompatible planner)"
            )
        scenarios = payload.get("scenarios")
        if not isinstance(scenarios, dict) or sorted(scenarios) != sorted(order):
            raise ValueError("manifest scenarios do not cover the planned order")
        for sid, entry in scenarios.items():
            status = entry.get("status")
            if status not in _STATUSES:
                raise ValueError(f"scenario {sid!r} has bad status {status!r}")
            if status == STATUS_DONE:
                validate_result_document(entry.get("result"), sid)
        return cls(spec, scenarios, order)

    @classmethod
    def from_json(cls, text: str) -> "SweepManifest":
        try:
            payload = json.loads(text)
        except ValueError as error:
            raise ValueError(f"malformed manifest JSON: {error}") from None
        return cls.from_payload(payload)

    def save(self, path: str) -> None:
        """Atomic write: readers see the old or the new manifest, never a tear."""
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(self.to_json())
            os.replace(tmp, path)
        except OSError:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @classmethod
    def load(cls, path: str) -> "SweepManifest":
        with open(path) as fh:
            return cls.from_json(fh.read())
