"""``repro-sweep``: plan, run, resume, and report scenario sweeps.

Usage::

    repro-sweep plan spec.json                      # show the expanded grid
    repro-sweep run spec.json --manifest m.json     # execute (creates/continues)
    repro-sweep run spec.json --manifest m.json --jobs 4 --timeout 120
    repro-sweep resume --manifest m.json            # continue a killed sweep
    repro-sweep report --manifest m.json --out report.json
    python -m repro.sweep --regen-golden            # rebuild tests/golden/

``run`` on an existing manifest verifies the spec matches and continues
it, so ``resume`` is simply ``run`` without re-reading the spec file.
Exit status is 1 when quarantined scenarios remain, so CI smoke steps
fail loudly on swept-under-the-rug failures.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import List, Optional

from repro.analysis.report import format_table
from repro.sweep.cache import ScenarioCache, default_scenario_cache_path
from repro.sweep.executor import SweepOptions, run_sweep
from repro.sweep.golden import GOLDEN_DIR, regenerate_golden
from repro.sweep.manifest import SweepManifest
from repro.sweep.report import build_report
from repro.sweep.spec import SweepSpec

__all__ = ["main"]


def positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text!r}")
    return value


def nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text!r}")
    return value


def positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid float value: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text!r}")
    return value


def _add_execution_arguments(sub) -> None:
    sub.add_argument("--jobs", type=positive_int, default=1,
                     help="worker processes (forked, one per scenario)")
    sub.add_argument("--timeout", type=positive_float, default=None,
                     metavar="SECONDS",
                     help="per-scenario wall-clock limit (needs --jobs > 1)")
    sub.add_argument("--retries", type=nonnegative_int, default=1,
                     help="extra attempts before quarantining a scenario")
    sub.add_argument("--stop-after", type=positive_int, default=None,
                     metavar="N", help="settle N scenarios, then stop")
    sub.add_argument("--cache", nargs="?", const=default_scenario_cache_path(),
                     default=None, metavar="PATH",
                     help="persist scenario results for cross-sweep reuse "
                          "(default path under results/.cache/)")
    sub.add_argument("--report", default=None, metavar="PATH",
                     help="write the canonical-JSON report here when done")
    sub.add_argument("--quiet", action="store_true",
                     help="suppress per-scenario progress lines")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Sharded, resumable scenario-sweep orchestrator.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    plan = commands.add_parser("plan", help="expand a spec and show the grid")
    plan.add_argument("spec", help="sweep spec JSON file")
    plan.add_argument("--manifest", default=None,
                      help="also write a fresh all-pending manifest here")

    run = commands.add_parser("run", help="execute a sweep (creates or continues)")
    run.add_argument("spec", help="sweep spec JSON file")
    run.add_argument("--manifest", required=True,
                     help="manifest path (created if missing, continued if not)")
    _add_execution_arguments(run)

    resume = commands.add_parser("resume", help="continue a sweep from its manifest")
    resume.add_argument("--manifest", required=True)
    resume.add_argument("--retry-quarantined", action="store_true",
                        help="return quarantined scenarios to pending first")
    _add_execution_arguments(resume)

    report = commands.add_parser("report", help="aggregate a manifest")
    report.add_argument("--manifest", required=True)
    report.add_argument("--out", default=None, metavar="PATH",
                        help="write the canonical-JSON report here")
    return parser


def _options(args) -> SweepOptions:
    cache = ScenarioCache(args.cache) if args.cache else None
    return SweepOptions(
        jobs=args.jobs,
        timeout_s=args.timeout,
        retries=args.retries,
        stop_after=args.stop_after,
        cache=cache,
    )


def _progress_printer(quiet: bool):
    if quiet:
        return None

    def emit(scenario_id: str, status: str) -> None:
        print(f"[{status}] {scenario_id}")

    return emit


def _atomic_write(path: str, text: str) -> None:
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except OSError:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def _finish(manifest: SweepManifest, report_path: Optional[str]) -> int:
    report = build_report(manifest)
    if report_path:
        _atomic_write(report_path, report.to_json())
    print(report.render())
    return 1 if manifest.counts()["quarantined"] else 0


def _execute(manifest: SweepManifest, args) -> int:
    run_sweep(
        manifest,
        manifest_path=args.manifest,
        options=_options(args),
        progress=_progress_printer(args.quiet),
    )
    return _finish(manifest, args.report)


def _cmd_plan(args) -> int:
    spec = SweepSpec.from_json_file(args.spec)
    manifest = SweepManifest.plan(spec)
    rows = [
        {
            "scenario": scenario.scenario_id,
            "workload": scenario.workload,
            "sampling": scenario.sampling,
            "seed": scenario.seed,
            "faults": scenario.faults,
            "placement": scenario.placement,
        }
        for scenario in spec.expand()
    ]
    print(format_table(rows, title=f"-- plan: {spec.name} "
                                   f"({len(rows)} scenarios) --"))
    if args.manifest:
        if os.path.exists(args.manifest):
            raise SystemExit(
                f"refusing to overwrite existing manifest {args.manifest!r}; "
                "use 'run' or 'resume' to continue it"
            )
        manifest.save(args.manifest)
        print(f"manifest written: {args.manifest}")
    return 0


def _cmd_run(args) -> int:
    spec = SweepSpec.from_json_file(args.spec)
    if os.path.exists(args.manifest):
        manifest = SweepManifest.load(args.manifest)
        if manifest.spec.spec_key != spec.spec_key:
            raise SystemExit(
                f"manifest {args.manifest!r} belongs to a different spec "
                f"({manifest.spec.name!r}); refusing to mix sweeps"
            )
    else:
        manifest = SweepManifest.plan(spec)
    return _execute(manifest, args)


def _cmd_resume(args) -> int:
    manifest = SweepManifest.load(args.manifest)
    if args.retry_quarantined:
        for sid in manifest.release_quarantined():
            print(f"[retrying] {sid}")
    return _execute(manifest, args)


def _cmd_report(args) -> int:
    manifest = SweepManifest.load(args.manifest)
    report = build_report(manifest)
    if args.out:
        _atomic_write(args.out, report.to_json())
    print(report.render())
    return 0


def _regen_golden_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Regenerate the golden conformance corpus.",
    )
    parser.add_argument("--regen-golden", action="store_true", required=True)
    parser.add_argument("--golden-dir", default=GOLDEN_DIR,
                        help="corpus directory (default tests/golden/)")
    args = parser.parse_args(argv)
    for path in regenerate_golden(args.golden_dir):
        print(f"wrote {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--regen-golden" in argv:
        return _regen_golden_main(argv)
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "plan": _cmd_plan,
        "run": _cmd_run,
        "resume": _cmd_resume,
        "report": _cmd_report,
    }
    try:
        return handlers[args.command](args)
    except ValueError as error:
        parser.error(str(error))
    except BrokenPipeError:
        # stdout went away mid-print (e.g. piped into head).  Detach it
        # so the interpreter's shutdown flush cannot raise again, and
        # exit like a well-behaved filter instead of tracebacking.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 1


if __name__ == "__main__":
    sys.exit(main())
