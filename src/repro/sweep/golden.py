"""Golden conformance corpus: one pinned scenario per workload.

The corpus under ``tests/golden/`` freezes the full canonical result
document of one small scenario per server application — simulation
summary, metrics snapshot, and online detection report.  Any change to
simulator arithmetic, metric registration, or report serialization shows
up as a byte diff against these files, which is the point: behavioral
drift must be *deliberate*.  After an intentional change, regenerate with

    python -m repro.sweep --regen-golden

and review the diff like any other code change.
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.sweep.scenario import result_to_json, run_scenario
from repro.sweep.spec import Scenario
from repro.workloads.registry import SERVER_APPS

__all__ = [
    "GOLDEN_DIR",
    "golden_path",
    "golden_scenario",
    "regenerate_golden",
]

#: Repo-relative default location of the corpus.
GOLDEN_DIR = os.path.join("tests", "golden")

#: Pinned per-workload axis overrides: tpcc exercises fault injection +
#: detection scoring, rubis exercises multi-machine tier placement.
_AXIS_OVERRIDES = {
    "tpcc": {"faults": "lock_stall:0.25"},
    "rubis": {"placement": "cluster:2:mysql=1"},
}


def golden_scenario(workload: str) -> Scenario:
    """The pinned scenario for one workload (small, online, seed 7)."""
    axes = {"faults": "none", "placement": "single"}
    axes.update(_AXIS_OVERRIDES.get(workload, {}))
    return Scenario(
        workload=workload,
        sampling="interrupt:100",
        seed=7,
        requests=5,
        concurrency=4,
        cores=4,
        online=True,
        train=0,
        **axes,
    )


def golden_path(workload: str, directory: str = GOLDEN_DIR) -> str:
    return os.path.join(directory, f"sweep_{workload}.json")


def regenerate_golden(directory: str = GOLDEN_DIR) -> List[str]:
    """Run every pinned scenario and rewrite the corpus; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    for workload in SERVER_APPS:
        document: Dict = run_scenario(golden_scenario(workload))
        path = golden_path(workload, directory)
        with open(path, "w") as fh:
            fh.write(result_to_json(document) + "\n")
        paths.append(path)
    return paths
