"""Golden conformance corpus: pinned scenarios per workload and fault mix.

The corpus under ``tests/golden/`` freezes the full canonical result
document of one small scenario per server application — simulation
summary, metrics snapshot, and online detection report — plus one
attribution scenario per pinned fault mix (``attr_*.json``), which
additionally freezes the cause-attribution scoring section.  Any change
to simulator arithmetic, metric registration, attribution thresholds, or
report serialization shows up as a byte diff against these files, which
is the point: behavioral drift must be *deliberate*.  After an
intentional change, regenerate with

    python -m repro.sweep --regen-golden

and review the diff like any other code change.
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.sweep.scenario import result_to_json, run_scenario
from repro.sweep.spec import Scenario
from repro.workloads.registry import SERVER_APPS

__all__ = [
    "ATTRIBUTION_GOLDEN_MIXES",
    "GOLDEN_DIR",
    "attribution_golden_path",
    "attribution_golden_scenario",
    "golden_path",
    "golden_scenario",
    "regenerate_golden",
]

#: Repo-relative default location of the corpus.
GOLDEN_DIR = os.path.join("tests", "golden")

#: Pinned per-workload axis overrides: tpcc exercises fault injection +
#: detection scoring, rubis exercises multi-machine tier placement.
_AXIS_OVERRIDES = {
    "tpcc": {"faults": "lock_stall:0.25"},
    "rubis": {"placement": "cluster:2:mysql=1"},
}


def golden_scenario(workload: str) -> Scenario:
    """The pinned scenario for one workload (small, online, seed 7)."""
    axes = {"faults": "none", "placement": "single"}
    axes.update(_AXIS_OVERRIDES.get(workload, {}))
    return Scenario(
        workload=workload,
        sampling="interrupt:100",
        seed=7,
        requests=5,
        concurrency=4,
        cores=4,
        online=True,
        train=0,
        **axes,
    )


def golden_path(workload: str, directory: str = GOLDEN_DIR) -> str:
    return os.path.join(directory, f"sweep_{workload}.json")


#: Pinned attribution fault mixes (corpus name -> --faults spec).  One
#: per taxonomy kind plus a composed schedule exercising concurrent
#: clauses, a time window, and a correlated burst.
ATTRIBUTION_GOLDEN_MIXES = {
    "lock_stall": "lock_stall:0.35",
    "lock_convoy": "lock_convoy:0.35",
    "cache_thrash": "cache_thrash:0.35",
    "membw_saturation": "membw_saturation:0.35",
    "gc_pause": "gc_pause:0.35",
    "slowdown": "slowdown:0.35",
    "slow_replica": "slow_replica:0.35",
    "gray_degradation": "gray_degradation:0.35",
    "mix": "gc_pause:0.25+cache_thrash:0.2@0-12+membw_saturation:0.15*2",
}


def attribution_golden_scenario(name: str) -> Scenario:
    """The pinned attribution scenario for one fault mix (tpcc, seed 7)."""
    return Scenario(
        workload="tpcc",
        sampling="interrupt:100",
        seed=7,
        faults=ATTRIBUTION_GOLDEN_MIXES[name],
        placement="single",
        requests=24,
        concurrency=4,
        cores=4,
        online=True,
        train=10,
        attribute=True,
    )


def attribution_golden_path(name: str, directory: str = GOLDEN_DIR) -> str:
    return os.path.join(directory, f"attr_{name}.json")


def regenerate_golden(directory: str = GOLDEN_DIR) -> List[str]:
    """Run every pinned scenario and rewrite the corpus; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    for workload in SERVER_APPS:
        document: Dict = run_scenario(golden_scenario(workload))
        path = golden_path(workload, directory)
        with open(path, "w") as fh:
            fh.write(result_to_json(document) + "\n")
        paths.append(path)
    for name in ATTRIBUTION_GOLDEN_MIXES:
        document = run_scenario(attribution_golden_scenario(name))
        path = attribution_golden_path(name, directory)
        with open(path, "w") as fh:
            fh.write(result_to_json(document) + "\n")
        paths.append(path)
    return paths
