"""Cross-scenario sweep reports.

A :class:`SweepReport` folds the per-scenario metric documents of a
(possibly partial) manifest into the cross-scenario tables the paper's
evaluation reassembles by hand: observer overhead vs. sampling policy per
workload (Table 1 / Fig. 5 shaped) and detection precision/recall vs.
fault mix (stream-detection shaped), plus a per-scenario status table.

Aggregation walks scenarios in plan order and groups in sorted-key order,
so every float reduction sums in a fixed sequence: the report is a pure
function of the manifest *content*, and an interrupted-then-resumed sweep
renders byte-identically to an uninterrupted one (``to_json`` is the
comparison surface CI uses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.report import format_table
from repro.sweep.manifest import STATUS_DONE, SweepManifest
from repro.sweep.spec import NO_FAULTS, canonical_json

__all__ = ["REPORT_FORMAT", "REPORT_VERSION", "SweepReport", "build_report"]

REPORT_FORMAT = "repro-sweep-report"
REPORT_VERSION = 1


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


@dataclass
class SweepReport:
    """Aggregated sweep outcome, JSON-ready."""

    summary: Dict = field(default_factory=dict)
    scenario_rows: List[Dict] = field(default_factory=list)
    overhead_rows: List[Dict] = field(default_factory=list)
    detection_rows: List[Dict] = field(default_factory=list)
    attribution_rows: List[Dict] = field(default_factory=list)

    def to_json(self) -> str:
        """Canonical serialization (the byte-identity comparison surface)."""
        payload = {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "summary": self.summary,
            "scenarios": self.scenario_rows,
            "overhead": self.overhead_rows,
            "detection": self.detection_rows,
        }
        # The attribution table appears only when some scenario scored
        # cause attribution, keeping detection-only report bytes pinned.
        if self.attribution_rows:
            payload["attribution"] = self.attribution_rows
        return canonical_json(payload) + "\n"

    def render(self) -> str:
        """Human-readable ASCII report."""
        s = self.summary
        lines = [
            f"== sweep report: {s['name']} ==",
            f"planned={s['planned']}  done={s['done']}  "
            f"pending={s['pending']}  quarantined={s['quarantined']}",
        ]
        if self.scenario_rows:
            lines.append("")
            lines.append(format_table(self.scenario_rows, title="-- scenarios --"))
        if self.overhead_rows:
            lines.append("")
            lines.append(
                format_table(
                    self.overhead_rows,
                    title="-- observer overhead by workload x sampling --",
                )
            )
        if self.detection_rows:
            lines.append("")
            lines.append(
                format_table(
                    self.detection_rows,
                    title="-- fault detection by workload x fault mix --",
                )
            )
        if self.attribution_rows:
            lines.append("")
            lines.append(
                format_table(
                    self.attribution_rows,
                    title="-- cause attribution by workload x fault mix --",
                )
            )
        return "\n".join(lines)


def build_report(manifest: SweepManifest) -> SweepReport:
    """Aggregate a manifest (partial sweeps report what has settled)."""
    counts = manifest.counts()
    summary = {
        "name": manifest.spec.name,
        "spec_key": manifest.spec.spec_key,
        "planned": counts["planned"],
        "done": counts[STATUS_DONE],
        "pending": counts["pending"],
        "quarantined": counts["quarantined"],
    }

    scenario_rows: List[Dict] = []
    overhead_groups: Dict[tuple, List[Dict]] = {}
    detection_groups: Dict[tuple, List[Dict]] = {}
    attribution_groups: Dict[tuple, List[Dict]] = {}
    for sid in manifest.order:
        entry = manifest.scenarios[sid]
        row = {"scenario": sid, "status": entry["status"]}
        if entry["status"] != STATUS_DONE:
            row.update(error=entry["error"] or "")
            scenario_rows.append(row)
            continue
        document = entry["result"]
        scenario = document["scenario"]
        result_summary = document["summary"]
        row.update(
            requests=result_summary["requests"],
            mean_cpi=round(result_summary["mean_cpi"], 4),
            overhead_pct=round(100.0 * result_summary["overhead_fraction"], 4),
            error="",
        )
        scenario_rows.append(row)
        overhead_groups.setdefault(
            (scenario["workload"], scenario["sampling"]), []
        ).append(result_summary)
        online = document["online"]
        if online is not None and scenario["faults"] != NO_FAULTS:
            detection_groups.setdefault(
                (scenario["workload"], scenario["faults"]), []
            ).append(online["summary"])
            if online.get("attribution") is not None:
                attribution_groups.setdefault(
                    (scenario["workload"], scenario["faults"]), []
                ).append(online["attribution"])

    overhead_rows = []
    for (workload, sampling) in sorted(overhead_groups):
        summaries = overhead_groups[(workload, sampling)]
        overhead_rows.append(
            {
                "workload": workload,
                "sampling": sampling,
                "scenarios": len(summaries),
                "mean_overhead_pct": round(
                    100.0 * _mean([s["overhead_fraction"] for s in summaries]), 4
                ),
                "mean_samples_per_request": round(
                    _mean([s["total_samples"] / s["requests"] for s in summaries]),
                    2,
                ),
                "mean_cpi": round(_mean([s["mean_cpi"] for s in summaries]), 4),
            }
        )

    detection_rows = []
    for (workload, faults) in sorted(detection_groups):
        summaries = detection_groups[(workload, faults)]
        precisions = [s["precision"] for s in summaries if s["precision"] is not None]
        recalls = [s["recall"] for s in summaries if s["recall"] is not None]
        precision = _mean(precisions)
        recall = _mean(recalls)
        detection_rows.append(
            {
                "workload": workload,
                "faults": faults,
                "scenarios": len(summaries),
                "injected": sum(s["injected"] for s in summaries),
                "flagged": sum(s["flagged"] for s in summaries),
                "precision": round(precision, 4) if precision is not None else None,
                "recall": round(recall, 4) if recall is not None else None,
            }
        )

    attribution_rows = []
    for (workload, faults) in sorted(attribution_groups):
        scores = attribution_groups[(workload, faults)]
        detected = sum(s["detected"] for s in scores)
        correct = sum(s["correct"] for s in scores)
        attribution_rows.append(
            {
                "workload": workload,
                "faults": faults,
                "scenarios": len(scores),
                "detected": detected,
                "correct": correct,
                "accuracy": round(correct / detected, 4) if detected else None,
                "false_attributions": sum(
                    s["false_attributions"] for s in scores
                ),
            }
        )

    return SweepReport(
        summary=summary,
        scenario_rows=scenario_rows,
        overhead_rows=overhead_rows,
        detection_rows=detection_rows,
        attribution_rows=attribution_rows,
    )
