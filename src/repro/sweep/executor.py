"""Sharded sweep execution: fork workers, timeouts, retries, quarantine.

The executor walks a manifest's pending scenarios in plan order and
settles each one: ``done`` with its result document, or — after a
per-scenario timeout or ``retries`` additional failed attempts —
``quarantined`` with the error, never aborting the rest of the sweep.
The manifest is saved (atomically) after every settled scenario, so a
``SIGKILL`` at any point loses at most the scenarios in flight; resuming
re-plans from the embedded spec and re-runs exactly the pending ids.

Parallel execution reuses the ``fork`` start-method pattern of
:mod:`repro.core.distengine`: scenario descriptions travel to workers by
address-space inheritance and only the result documents cross a pipe.
Unlike the distance engine's pool, each scenario gets its *own* forked
process — a timed-out or crashed scenario is killed without poisoning a
shared pool, which is what makes per-scenario timeouts enforceable.
Because every scenario is an independent pure function of its
description, shard count cannot change any result; jobs=1 and jobs=N
manifests are byte-identical.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from typing import Dict, List, Optional

from repro.sweep.cache import ScenarioCache
from repro.sweep.manifest import SweepManifest
from repro.sweep.scenario import run_scenario
from repro.sweep.spec import Scenario

__all__ = ["SweepOptions", "run_sweep"]

#: How long the parallel loop blocks waiting for worker output before
#: re-checking deadlines (seconds).
_POLL_INTERVAL = 0.05


@dataclass
class SweepOptions:
    """Execution knobs for one :func:`run_sweep` call."""

    #: Worker processes; 1 (or no fork support) runs scenarios in-process.
    jobs: int = 1
    #: Per-scenario wall-clock limit; enforced only on forked workers
    #: (the in-process path cannot interrupt a running scenario).
    timeout_s: Optional[float] = None
    #: Additional attempts after a scenario's first failure.
    retries: int = 1
    #: Settle at most this many scenarios, then return (tests use this to
    #: emulate an interrupted sweep; CI kills the process for real).
    stop_after: Optional[int] = None
    #: Cross-sweep result cache; hits settle without executing.
    cache: Optional[ScenarioCache] = None

    def __post_init__(self):
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.stop_after is not None and self.stop_after < 1:
            raise ValueError(f"stop_after must be >= 1, got {self.stop_after}")


def _child_run(scenario: Scenario, conn) -> None:
    """Forked worker: run one scenario, ship ('ok', doc) or ('error', text)."""
    try:
        document = run_scenario(scenario)
    except BaseException as error:  # quarantine wants the reason, whatever it is
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        finally:
            conn.close()
        return
    conn.send(("ok", document))
    conn.close()


@dataclass
class _Shard:
    """One in-flight forked scenario."""

    scenario: Scenario
    attempts: int
    process: object
    conn: object
    deadline: Optional[float]


class _Progress:
    """Settlement bookkeeping shared by the serial and parallel paths."""

    def __init__(self, manifest: SweepManifest, manifest_path, options, progress):
        self.manifest = manifest
        self.manifest_path = manifest_path
        self.options = options
        self.progress = progress
        self.settled = 0

    def _save(self) -> None:
        if self.manifest_path is not None:
            self.manifest.save(self.manifest_path)

    def done(self, scenario: Scenario, document: Dict, attempts: int,
             from_cache: bool = False) -> None:
        self.manifest.mark_done(scenario.scenario_id, document, attempts)
        cache = self.options.cache
        if cache is not None and not from_cache:
            cache.put(scenario.content_key, document)
            cache.save()
        self._save()
        self.settled += 1
        if self.progress is not None:
            status = "cached" if from_cache else "done"
            self.progress(scenario.scenario_id, status)

    def quarantined(self, scenario: Scenario, attempts: int, error: str) -> None:
        self.manifest.mark_quarantined(scenario.scenario_id, attempts, error)
        self._save()
        self.settled += 1
        if self.progress is not None:
            self.progress(scenario.scenario_id, f"quarantined: {error}")

    @property
    def budget_left(self) -> bool:
        stop_after = self.options.stop_after
        return stop_after is None or self.settled < stop_after


def run_sweep(
    manifest: SweepManifest,
    manifest_path: Optional[str] = None,
    options: Optional[SweepOptions] = None,
    progress=None,
) -> SweepManifest:
    """Settle the manifest's pending scenarios (subject to ``stop_after``).

    ``progress`` is an optional ``(scenario_id, status_text)`` callback.
    Returns the (mutated) manifest; when ``manifest_path`` is given it has
    been saved after every settlement, including before returning early.
    """
    options = options or SweepOptions()
    tracker = _Progress(manifest, manifest_path, options, progress)
    objects = manifest.scenario_objects()
    pending = [objects[sid] for sid in manifest.pending_ids()]

    if manifest_path is not None:
        # Persist the plan up front so a kill during the very first
        # scenario still leaves a resumable manifest on disk.
        manifest.save(manifest_path)

    remaining: List[Scenario] = []
    for scenario in pending:
        if not tracker.budget_left:
            return manifest
        cached = (
            options.cache.get(scenario.content_key)
            if options.cache is not None
            else None
        )
        if cached is not None:
            # A hit counts as one attempt: the manifest must not encode
            # whether a cache happened to be warm, or warm-cache resumes
            # would break the byte-identity contract.
            tracker.done(scenario, cached, attempts=1, from_cache=True)
        else:
            remaining.append(scenario)

    if options.stop_after is not None:
        remaining = remaining[: options.stop_after - tracker.settled]

    use_fork = (
        options.jobs > 1
        and len(remaining) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    if use_fork:
        _run_forked(remaining, tracker, options)
    else:
        _run_serial(remaining, tracker, options)
    return manifest


def _run_serial(scenarios: List[Scenario], tracker: _Progress,
                options: SweepOptions) -> None:
    for scenario in scenarios:
        attempts = 0
        while True:
            attempts += 1
            try:
                document = run_scenario(scenario)
            except Exception as error:
                if attempts > options.retries:
                    tracker.quarantined(
                        scenario, attempts, f"{type(error).__name__}: {error}"
                    )
                    break
                continue
            tracker.done(scenario, document, attempts)
            break


def _run_forked(scenarios: List[Scenario], tracker: _Progress,
                options: SweepOptions) -> None:
    ctx = multiprocessing.get_context("fork")
    queue: List[tuple] = [(scenario, 1) for scenario in scenarios]
    shards: List[_Shard] = []

    def spawn(scenario: Scenario, attempts: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_child_run, args=(scenario, child_conn), daemon=True
        )
        process.start()
        child_conn.close()
        deadline = (
            time.monotonic() + options.timeout_s
            if options.timeout_s is not None
            else None
        )
        shards.append(_Shard(scenario, attempts, process, parent_conn, deadline))

    def reap(shard: _Shard, outcome: str, payload) -> None:
        shards.remove(shard)
        shard.conn.close()
        shard.process.join(timeout=5.0)
        if shard.process.is_alive():
            shard.process.kill()
            shard.process.join()
        if outcome == "ok":
            tracker.done(shard.scenario, payload, shard.attempts)
        elif shard.attempts > options.retries:
            tracker.quarantined(shard.scenario, shard.attempts, payload)
        else:
            queue.insert(0, (shard.scenario, shard.attempts + 1))

    try:
        while queue or shards:
            while queue and len(shards) < options.jobs:
                scenario, attempts = queue.pop(0)
                spawn(scenario, attempts)
            ready = connection_wait(
                [shard.conn for shard in shards], timeout=_POLL_INTERVAL
            )
            for shard in [s for s in shards if s.conn in ready]:
                try:
                    outcome, payload = shard.conn.recv()
                except (EOFError, OSError):
                    outcome, payload = "error", "worker exited without a result"
                reap(shard, outcome, payload)
            now = time.monotonic()
            for shard in [
                s for s in shards if s.deadline is not None and now >= s.deadline
            ]:
                shard.process.kill()
                reap(
                    shard,
                    "error",
                    f"timeout after {options.timeout_s:g}s",
                )
    finally:
        for shard in shards:
            shard.process.kill()
            shard.process.join()
            shard.conn.close()
