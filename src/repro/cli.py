"""Command-line simulation driver.

Usage examples::

    repro-simulate tpcc --requests 60 --sampling interrupt:100
    repro-simulate webserver --sampling syscall:8,60 --export traces.json
    repro-simulate tpch --scheduler contention --requests 40 --summary-metric cpi
    repro-simulate tpcc --requests 80 --classify 4 --jobs 4
    repro-simulate tpcc --trace events.jsonl --metrics-out metrics.json
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.report import format_table
from repro.core.clustering import distance_matrix, k_medoids
from repro.core.distances import l1_distance, unequal_length_penalty
from repro.core.distengine import DistanceEngine
from repro.core.variation import captured_variation, inter_request_variation
from repro.hardware.platform import WOODCREST, serial_machine
from repro.kernel.contention import ContentionEasingScheduler
from repro.kernel.sampling import SamplingMode, SamplingPolicy
from repro.kernel.scheduler import RoundRobinScheduler
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.kernel.trace_io import save_traces
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import StageProfiler, activated
from repro.obs.trace import TraceCollector, save_events
from repro.workloads.registry import (
    SERVER_APPS,
    available_workloads,
    make_faulted_workload,
    make_workload,
)


def _spec_float(text: str, spec: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ValueError(
            f"invalid sampling spec {spec!r}: {text!r} is not a number"
        ) from None


def parse_sampling(text: str) -> SamplingPolicy:
    """Parse ``interrupt:<period_us>``, ``syscall:<tmin>,<tbackup>``,
    ``ctx`` into a sampling policy."""
    kind, _, args = text.partition(":")
    if kind == "interrupt":
        return SamplingPolicy.interrupt(_spec_float(args or "100", text))
    if kind == "syscall":
        t_min, _, t_backup = args.partition(",")
        if not t_min or not t_backup:
            raise ValueError("syscall sampling needs '<tmin_us>,<tbackup_us>'")
        return SamplingPolicy.syscall_triggered(
            _spec_float(t_min, text), _spec_float(t_backup, text)
        )
    if kind == "ctx":
        return SamplingPolicy(mode=SamplingMode.CONTEXT_SWITCH_ONLY)
    raise ValueError(f"unknown sampling spec {text!r}")


def parse_scheduler(text: str, threshold: float):
    if text == "roundrobin":
        return RoundRobinScheduler()
    if text == "contention":
        return ContentionEasingScheduler(
            high_usage_threshold=threshold, adaptive_threshold=True
        )
    raise ValueError(f"unknown scheduler {text!r}")


def fault_spec(text: str) -> str:
    """argparse type for ``--faults``: validate the composable schedule
    grammar, keep the text.  Malformed specs exit with a usage error
    naming the offending clause or option token."""
    from repro.faults.schedule import parse_fault_schedule

    try:
        parse_fault_schedule(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return text


def positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text!r}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-simulate",
        description="Simulate a server workload and report request behavior",
    )
    parser.add_argument("workload", help=f"one of {', '.join(SERVER_APPS)}")
    parser.add_argument(
        "--requests", type=positive_int, default=40,
        help="number of requests to simulate (>= 1, default 40)",
    )
    parser.add_argument("--concurrency", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--cores", type=int, choices=(1, 4), default=4,
        help="1 = serial baseline machine, 4 = the paper's Woodcrest",
    )
    parser.add_argument(
        "--sampling", default=None,
        help="interrupt:<period_us> | syscall:<tmin_us>,<tbackup_us> | ctx "
        "(default: interrupt at the workload's paper frequency)",
    )
    parser.add_argument(
        "--scheduler", choices=("roundrobin", "contention"), default="roundrobin"
    )
    parser.add_argument(
        "--threshold", type=float, default=0.01,
        help="contention scheduler warm-up high-usage threshold (miss/ins)",
    )
    parser.add_argument(
        "--export",
        help="write traces to this file (.jsonl = line-oriented stream, "
        "otherwise a JSON document)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="record structured observability events (admission, scheduling, "
        "phase transitions, samples, syscalls) and export them as JSONL",
    )
    parser.add_argument(
        "--trace-capacity", type=positive_int, default=1_000_000,
        help="event ring-buffer capacity for --trace (oldest events drop "
        "beyond this, default 1000000)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write a metrics snapshot (counters/gauges/histograms plus "
        "stage timings) to this JSON file",
    )
    parser.add_argument(
        "--top", type=int, default=5, help="how many requests to print"
    )
    parser.add_argument(
        "--classify", type=positive_int, default=None, metavar="K",
        help="cluster the requests into K groups by CPI-variation L1 "
        "distance (k-medoids) and print a per-cluster summary",
    )
    parser.add_argument(
        "--jobs", type=positive_int, default=1,
        help="worker processes for the --classify pairwise-distance "
        "matrix (default 1)",
    )
    parser.add_argument(
        "--faults", type=fault_spec, default=None, metavar="SPEC",
        help="inject ground-truth faults from a composable schedule, e.g. "
        "lock_stall:0.2 or 'gc_pause:0.2+cache_thrash:0.1@0-40' (clauses "
        "joined by +; options: @lo-hi window, %%kind=NAME / %%tenant=N "
        "targets, *N bursts; see docs/faults.md)",
    )
    parser.add_argument(
        "--arrivals", default=None, metavar="SPEC",
        help="open-loop arrival process: poisson:<rate_rps> | "
        "onoff:<ron>,<roff>,<on_ms>,<off_ms> | diurnal:<rate>,<period_ms>,"
        "<depth> | zipf:<rate>,<s>,<tenants> | replay:<path> | closed "
        "(default: closed loop at --concurrency)",
    )
    parser.add_argument(
        "--offered-load", type=float, default=None, metavar="RPS",
        help="shorthand for --arrivals poisson:<RPS>",
    )
    parser.add_argument(
        "--dispatch", default=None, metavar="POLICY",
        help="core dispatch policy: rr | random | jsq | low | classaware "
        "(default rr)",
    )
    parser.add_argument(
        "--admission-limit", type=positive_int, default=None, metavar="N",
        help="bound the admission queue at N in-flight requests; open-loop "
        "arrivals beyond it are shed (counted, not executed)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a stage-timing table (generate/simulate/distance/cluster "
        "split) after the run, mirroring repro-experiments --profile",
    )
    parser.add_argument(
        "--online", action="store_true",
        help="attach the streaming online pipeline (prediction + anomaly "
        "detection) to the run and print its scored report",
    )
    parser.add_argument(
        "--attribute", action="store_true",
        help="with --online: classify the likely fault cause of each "
        "flagged request and score attribution against injected ground "
        "truth",
    )
    parser.add_argument(
        "--checkpoint", metavar="PATH",
        help="with --online: write the pipeline's versioned checkpoint "
        "after the run",
    )
    return parser


def classify_requests(traces, window_instructions: float, k: int, seed: int,
                      jobs: int = 1) -> str:
    """k-medoids cluster summary of simulated requests (L1 on CPI series)."""
    series = [t.series("cpi", window_instructions).values for t in traces]
    rng = np.random.default_rng(seed)
    penalty = unequal_length_penalty(np.concatenate(series), rng)
    engine = DistanceEngine(jobs=jobs)
    matrix = distance_matrix(
        series,
        lambda a, b: l1_distance(a, b, penalty=penalty),
        engine=engine,
        distance_key=f"l1:p={penalty!r}",
    )
    clusters = k_medoids(
        matrix, k=min(k, len(traces)), rng=np.random.default_rng(seed)
    )
    cpu_times = np.array([t.cpu_time_us() for t in traces])
    cpis = np.array([t.overall_cpi() for t in traces])
    rows = []
    for cluster, medoid in enumerate(clusters.medoids):
        members = clusters.members(cluster)
        rows.append(
            {
                "cluster": cluster,
                "size": int(members.size),
                "medoid": traces[int(medoid)].spec.request_id,
                "kind": traces[int(medoid)].spec.kind,
                "mean_cpu_us": float(cpu_times[members].mean()),
                "mean_cpi": float(cpis[members].mean()),
            }
        )
    return format_table(rows, title=f"k-medoids clusters (k={len(rows)})")


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.workload not in available_workloads():
        print(
            f"unknown workload {args.workload!r}; "
            f"available: {', '.join(available_workloads())}",
            file=sys.stderr,
        )
        return 2

    if args.checkpoint and not args.online:
        parser.error("--checkpoint requires --online")
    if args.offered_load is not None and args.arrivals is not None:
        parser.error("--offered-load is shorthand for --arrivals poisson:<RPS>; "
                     "give one or the other")

    traffic = None
    arrivals_spec = args.arrivals
    if args.offered_load is not None:
        arrivals_spec = f"poisson:{args.offered_load}"
    if arrivals_spec is not None or args.dispatch or args.admission_limit:
        from repro.traffic import TrafficConfig, parse_arrivals, parse_dispatch

        try:
            traffic = TrafficConfig(
                arrivals=parse_arrivals(arrivals_spec or "closed"),
                dispatch=parse_dispatch(args.dispatch or "rr"),
                admission_limit=args.admission_limit,
            )
        except ValueError as error:
            parser.error(str(error))

    profiler = StageProfiler()
    collector = None
    pipeline = None
    if args.trace:
        collector = TraceCollector(capacity=args.trace_capacity)
    if args.attribute and not args.online:
        parser.error("--attribute requires --online")
    if args.online:
        from repro.online.pipeline import (
            SUBSCRIBED_KINDS,
            OnlineConfig,
            OnlinePipeline,
        )

        if collector is None:
            # Online-only runs stream just the kinds the pipeline reads,
            # retaining nothing (dispatch-only).
            collector = TraceCollector(capacity=0, kinds=SUBSCRIBED_KINDS)
        if args.attribute:
            pipeline = OnlinePipeline(config=OnlineConfig(attribute=True))
        else:
            pipeline = OnlinePipeline()
        collector.subscribe(pipeline.process_event)
    with activated(profiler):
        workload = (
            make_faulted_workload(args.workload, args.faults)
            if args.faults
            else make_workload(args.workload)
        )
        try:
            sampling = (
                parse_sampling(args.sampling)
                if args.sampling
                else SamplingPolicy.interrupt(workload.sampling_period_us)
            )
            scheduler = parse_scheduler(args.scheduler, args.threshold)
        except ValueError as error:
            parser.error(str(error))
        machine = WOODCREST if args.cores == 4 else serial_machine()
        concurrency = args.concurrency or (8 if args.cores == 4 else 1)
        config = SimConfig(
            machine=machine,
            sampling=sampling,
            scheduler=scheduler,
            num_requests=args.requests,
            concurrency=concurrency,
            seed=args.seed,
            collector=collector,
            traffic=traffic,
        )
        result = ServerSimulator(workload, config).run()

    cpis = result.request_cpis()
    cpu_times = np.array([t.cpu_time_us() for t in result.traces])
    print(
        f"{args.workload}: {len(result.traces)} requests on {args.cores} "
        f"core(s), {result.sampler_stats.total_samples} counter samples, "
        f"{result.wall_cycles / 3e9 * 1000:.1f} simulated ms"
    )
    print(
        f"request CPI: mean {cpis.mean():.2f}, p90 "
        f"{np.percentile(cpis, 90):.2f}, max {cpis.max():.2f}"
    )
    print(
        f"request CPU: mean {cpu_times.mean():.0f} us, p90 "
        f"{np.percentile(cpu_times, 90):.0f} us"
    )
    for metric in ("cpi", "l2_refs_per_ins", "l2_miss_ratio"):
        inter = inter_request_variation(result.traces, metric)
        intra = captured_variation(result.traces, metric)
        print(f"{metric}: inter-request CoV {inter:.3f}, with intra {intra:.3f}")

    if result.latency is not None:
        summary = result.latency.summary()
        lat, queue = summary["latency_us"], summary["queue_us"]
        print(
            f"traffic: {summary['completed']} completed, "
            f"{summary['shed']} shed, "
            f"throughput {summary['throughput_rps']:.0f} req/s"
        )
        if lat["p50"] is not None:
            print(
                f"latency: p50 {lat['p50']:.0f} us, p95 {lat['p95']:.0f} us, "
                f"p99 {lat['p99']:.0f} us "
                f"(queueing p99 {queue['p99']:.0f} us)"
            )
        kind_rows = result.latency.rows_by_kind()
        if kind_rows:
            print()
            print(format_table(kind_rows, title="latency by request kind"))

    rows = [
        {
            "id": t.spec.request_id,
            "kind": t.spec.kind,
            "instructions": int(t.total_instructions),
            "cpu_us": t.cpu_time_us(),
            "cpi": t.overall_cpi(),
            "periods": t.num_periods,
        }
        for t in result.traces[: args.top]
    ]
    print()
    print(format_table(rows, title=f"first {len(rows)} requests"))

    if args.classify:
        print()
        with activated(profiler):
            summary = classify_requests(
                result.traces,
                workload.window_instructions,
                k=args.classify,
                seed=args.seed,
                jobs=args.jobs,
            )
        print(summary)

    if args.profile:
        rows = [
            {**row, "seconds": round(row["seconds"], 3)}
            for row in profiler.rows()
        ]
        print()
        print(format_table(rows, title=f"-- {args.workload} stage profile --"))

    if pipeline is not None:
        from repro.online.checkpoint import save_checkpoint
        from repro.online.report import build_report

        print()
        print(build_report(pipeline).render())
        if args.checkpoint:
            save_checkpoint(pipeline, args.checkpoint)
            print(f"checkpoint written to {args.checkpoint}")

    if args.export:
        save_traces(result.traces, args.export)
        print(f"\ntraces written to {args.export}")
    if args.trace:
        save_events(collector, args.trace)
        print(
            f"\n{len(collector)} observability events written to {args.trace} "
            f"({collector.dropped} dropped)"
        )
    if args.metrics_out:
        registry = MetricsRegistry()
        result.register_metrics(registry)
        extra = {
            "workload": args.workload,
            "seed": args.seed,
            "stages": profiler.snapshot(),
        }
        if collector is not None:
            extra["trace_events"] = len(collector)
            extra["trace_dropped"] = collector.dropped
        registry.write_json(args.metrics_out, extra=extra)
        print(f"metrics written to {args.metrics_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
