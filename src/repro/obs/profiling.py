"""Wall-clock stage profiling for experiment runs.

Each experiment pipeline walks the same stages — generate (workload
construction), simulate (the discrete-event run), distance (pairwise
differencing), cluster (k-medoids) — and performance work like the
parallel distance engine needs those stages *measurable per run*.

A :class:`StageProfiler` accumulates seconds and entry counts per stage.
Instrumented library code calls :func:`profiled_stage`, which is a no-op
unless a profiler has been activated for the current process (ambient,
per-process state: experiment workers activate their own instance, so the
fork-based runner parallelism keeps timings separated).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Optional

#: Canonical stage names used by the instrumented pipeline.
STAGES = ("generate", "simulate", "distance", "cluster")

_ACTIVE: Optional["StageProfiler"] = None


class StageProfiler:
    """Accumulates wall seconds and entry counts per named stage."""

    def __init__(self):
        self._seconds: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Fold in an externally measured duration."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + count

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, dict]:
        """Per-stage ``{"seconds": ..., "calls": ...}``, first-entry order."""
        return {
            name: {"seconds": self._seconds[name], "calls": self._counts[name]}
            for name in self._seconds
        }

    def rows(self) -> list:
        """Table rows for :func:`repro.analysis.report.format_table`."""
        return [
            {"stage": name, "calls": self._counts[name], "seconds": seconds}
            for name, seconds in self._seconds.items()
        ]


def active_profiler() -> Optional[StageProfiler]:
    return _ACTIVE


@contextmanager
def activated(profiler: StageProfiler):
    """Make ``profiler`` the ambient stage sink for this process."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profiler
    try:
        yield profiler
    finally:
        _ACTIVE = previous


@contextmanager
def profiled_stage(name: str):
    """Time a stage into the ambient profiler; no-op when none is active."""
    profiler = _ACTIVE
    if profiler is None:
        yield
        return
    with profiler.stage(name):
        yield
