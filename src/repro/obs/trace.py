"""Request-scoped tracing for the simulator (the observability substrate).

The paper's whole contribution is OS-level *online observation* of
per-request behavior, yet the simulator itself used to be a black box:
when a figure shifted there was no way to see which requests, phases, or
scheduler decisions moved.  The :class:`TraceCollector` fills that gap —
a bounded ring buffer of structured events emitted at every simulator
decision point (request admitted → task dispatched → phase transitions →
samples → stage hand-offs → completed, plus scheduler migrations and
contention-easing picks), exportable as JSONL for offline inspection and
byte-identical determinism comparisons.

Design constraints, in priority order:

* **No observer effect.**  Emitting events must not touch the simulation
  RNG or any simulated state; a run with tracing enabled produces exactly
  the traces of a run without.
* **No-op fast path.**  With tracing disabled the per-event cost in the
  simulator is one attribute check on :data:`NULL_COLLECTOR`.
* **Determinism.**  Events carry only simulated quantities (cycles, ids,
  names) — never wall-clock time — so two runs with the same seed export
  byte-identical JSONL.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

FORMAT = "repro-obs-events"
FORMAT_VERSION = 1

#: Event kinds emitted by the simulator (documented in
#: docs/observability.md; tests assert against these names).
EVENT_KINDS = (
    "run_start",
    "request_admitted",
    "task_enqueued",
    "task_dispatched",
    "task_switched_out",
    "phase_transition",
    "syscall",
    "sample",
    "period_sample",
    "stage_handoff",
    "sched_avoidance",
    "sched_preempt",
    "request_completed",
    "traffic",
    "request_shed",
    "fault_window_start",
    "fault_window_end",
    "run_end",
)

_KIND_SET = frozenset(EVENT_KINDS)


@dataclass(slots=True)
class ObsEvent:
    """One structured trace record."""

    seq: int
    cycle: float
    kind: str
    request_id: Optional[int] = None
    task_id: Optional[int] = None
    core: Optional[int] = None
    data: Dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Canonical dict form (stable key set, for lossless JSONL)."""
        return {
            "seq": self.seq,
            "cycle": self.cycle,
            "kind": self.kind,
            "request_id": self.request_id,
            "task_id": self.task_id,
            "core": self.core,
            "data": self.data,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ObsEvent":
        if not isinstance(payload, dict):
            raise ValueError("event record is not an object")
        missing = {"seq", "cycle", "kind"} - set(payload)
        if missing:
            raise ValueError(f"event record missing keys {sorted(missing)}")
        data = payload.get("data", {})
        if not isinstance(data, dict):
            raise ValueError("event 'data' must be an object")
        return cls(
            seq=int(payload["seq"]),
            cycle=float(payload["cycle"]),
            kind=str(payload["kind"]),
            request_id=payload.get("request_id"),
            task_id=payload.get("task_id"),
            core=payload.get("core"),
            data=data,
        )


@dataclass
class RequestSpan:
    """Per-request summary derived from the event stream.

    Gives tests a first-class way to assert on simulator-internal behavior
    (admission ordering, dispatch counts, phase walks) instead of only
    end-artifact numbers.
    """

    request_id: int
    admitted_cycle: Optional[float] = None
    completed_cycle: Optional[float] = None
    dispatches: int = 0
    phase_transitions: int = 0
    samples: int = 0
    syscalls: int = 0
    handoffs: int = 0
    cores: List[int] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.admitted_cycle is not None and self.completed_cycle is not None

    @property
    def latency_cycles(self) -> Optional[float]:
        if not self.complete:
            return None
        return self.completed_cycle - self.admitted_cycle


class TraceCollector:
    """Bounded ring buffer of :class:`ObsEvent` records.

    ``capacity`` bounds memory; once full, the oldest events are dropped
    (and counted in :attr:`dropped`) — the standard trade-off of long-term
    low-overhead event monitoring.  ``capacity=None`` keeps everything;
    ``capacity=0`` retains nothing (dispatch-only): events flow to
    subscribers and are released immediately, so a pure streaming consumer
    never grows the garbage-collector's tracked population.

    ``kinds`` restricts collection to a subset of :data:`EVENT_KINDS`:
    emissions of any other kind return before an event record is even
    built.  Production-style online consumers (the streaming pipeline)
    attach with exactly the kinds they process, which keeps the per-event
    tax proportional to the analysis actually running instead of to the
    simulator's full instrumentation density.
    """

    #: Emission guard checked by instrumented hot paths.
    enabled = True

    def __init__(
        self,
        capacity: Optional[int] = 1_000_000,
        kinds: Optional[Iterable[str]] = None,
    ):
        if capacity is not None and capacity < 0:
            raise ValueError(
                "capacity must be >= 0 (0 = dispatch-only, None = unbounded)"
            )
        if kinds is not None:
            kinds = frozenset(kinds)
            unknown = kinds - _KIND_SET
            if unknown:
                raise ValueError(f"unknown event kinds {sorted(unknown)}")
        self.capacity = capacity
        self.kinds = kinds
        self._events: deque = deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0
        self._subscribers: List = []

    # -- emission -------------------------------------------------------

    def wants(self, kind: str) -> bool:
        """Whether this collector keeps events of ``kind``.

        Instrumented hot paths precompute ``enabled and wants(kind)`` per
        callsite so a kind-filtered collector costs nothing — not even
        keyword-argument packing — on the kinds it ignores.
        """
        return self.kinds is None or kind in self.kinds

    def subscribe(self, callback) -> None:
        """Register a live consumer called with every emitted :class:`ObsEvent`.

        Subscribers see events in emission order, synchronously and before
        ring-buffer eviction can drop them — the hook the streaming online
        pipeline (:mod:`repro.online`) attaches to.  Callbacks must not
        mutate simulated state.
        """
        if not callable(callback):
            raise TypeError("subscriber must be callable")
        self._subscribers.append(callback)

    def unsubscribe(self, callback) -> None:
        self._subscribers.remove(callback)

    def emit(
        self,
        kind: str,
        cycle: float,
        request_id: Optional[int] = None,
        task_id: Optional[int] = None,
        core: Optional[int] = None,
        **data,
    ) -> None:
        kinds = self.kinds
        if kinds is not None and kind not in kinds:
            # kinds is validated at construction, so a filtered-out kind
            # still needs the unknown-kind check before being ignored.
            if kind not in _KIND_SET:
                raise ValueError(f"unknown event kind {kind!r}")
            return
        if kinds is None and kind not in _KIND_SET:
            raise ValueError(f"unknown event kind {kind!r}")
        events = self._events
        # Ring eviction counts as a drop; dispatch-only (capacity=0)
        # retention is by design, not data loss.
        if self.capacity and len(events) == self.capacity:
            self.dropped += 1
        event = ObsEvent(
            seq=self._seq,
            cycle=float(cycle),
            kind=kind,
            request_id=request_id,
            task_id=task_id,
            core=core,
            data=data,
        )
        events.append(event)
        self._seq += 1
        for callback in self._subscribers:
            callback(event)

    def clear(self) -> None:
        self._events.clear()
        self._seq = 0
        self.dropped = 0

    # -- queries --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[ObsEvent]:
        return list(self._events)

    @property
    def emitted(self) -> int:
        """Total events emitted (including any dropped from the ring)."""
        return self._seq

    def events_of_kind(self, kind: str) -> List[ObsEvent]:
        return [e for e in self._events if e.kind == kind]

    def request_events(self, request_id: int) -> List[ObsEvent]:
        return [e for e in self._events if e.request_id == request_id]

    def request_spans(self) -> Dict[int, RequestSpan]:
        """Fold the event stream into per-request span summaries."""
        spans: Dict[int, RequestSpan] = {}
        for event in self._events:
            rid = event.request_id
            if rid is None:
                continue
            span = spans.get(rid)
            if span is None:
                span = spans[rid] = RequestSpan(request_id=rid)
            if event.kind == "request_admitted":
                span.admitted_cycle = event.cycle
            elif event.kind == "request_completed":
                span.completed_cycle = event.cycle
            elif event.kind == "task_dispatched":
                span.dispatches += 1
                if event.core is not None:
                    span.cores.append(event.core)
            elif event.kind == "phase_transition":
                span.phase_transitions += 1
            elif event.kind == "sample":
                span.samples += 1
            elif event.kind == "syscall":
                span.syscalls += 1
            elif event.kind == "stage_handoff":
                span.handoffs += 1
        return spans


class NullCollector(TraceCollector):
    """Disabled collector: every emission is a no-op.

    Instrumented code guards with ``if collector.enabled:`` so the
    disabled path never constructs events; the methods are still safe to
    call.
    """

    enabled = False

    def __init__(self):
        super().__init__(capacity=1)

    def emit(self, kind, cycle, request_id=None, task_id=None, core=None, **data):
        return None

    def wants(self, kind: str) -> bool:
        return False

    def subscribe(self, callback) -> None:
        raise ValueError(
            "cannot subscribe to the disabled collector; pass a real "
            "TraceCollector to SimConfig(collector=...) for live streaming"
        )


#: Shared no-op collector used by the simulator when tracing is off.
NULL_COLLECTOR = NullCollector()


# -- JSONL export / import ---------------------------------------------

def _dump_line(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def events_to_jsonl(
    events: Iterable[ObsEvent], dropped: int = 0
) -> str:
    """Serialize events as JSONL: a header line, then one event per line.

    The serialization is canonical (sorted keys, no whitespace), so two
    identical event streams produce byte-identical text — the property the
    determinism golden tests hash-compare.
    """
    events = list(events)
    lines = [
        _dump_line(
            {
                "format": FORMAT,
                "version": FORMAT_VERSION,
                "events": len(events),
                "dropped": dropped,
            }
        )
    ]
    lines.extend(_dump_line(e.to_dict()) for e in events)
    return "\n".join(lines) + "\n"


def save_events(collector: TraceCollector, path: str) -> None:
    """Write a collector's buffered events as a JSONL file."""
    with open(path, "w") as fh:
        fh.write(events_to_jsonl(collector.events, dropped=collector.dropped))


def parse_events_jsonl(text: str):
    """Parse JSONL text back into ``(events, dropped)``.

    ``dropped`` is the header's drop counter, returned so export →
    import → re-export is lossless.  Raises :class:`ValueError` on a
    missing/foreign header, unsupported version, malformed lines, or an
    event-count mismatch — corruption must fail loudly.
    """
    # Keep the original line numbers through blank-line filtering: the
    # online service replays tails from these files, and "line 7041" must
    # mean line 7041 of the file, not of the non-blank subsequence.
    numbered = [
        (number, line)
        for number, line in enumerate(text.splitlines(), start=1)
        if line.strip()
    ]
    if not numbered:
        raise ValueError("empty obs event stream")
    header_number, header_line = numbered[0]
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as error:
        raise ValueError(
            f"line {header_number}: malformed obs header: {error}"
        ) from None
    if not isinstance(header, dict) or header.get("format") != FORMAT:
        raise ValueError("not a repro obs event stream")
    if header.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported obs version {header.get('version')}")
    events = []
    for number, line in numbered[1:]:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"line {number}: malformed event: {error}") from None
        try:
            events.append(ObsEvent.from_dict(payload))
        except (ValueError, TypeError) as error:
            raise ValueError(f"line {number}: {error}") from None
    declared = header.get("events")
    if declared is not None and declared != len(events):
        raise ValueError(
            f"header declares {declared} events, stream has {len(events)}"
        )
    return events, int(header.get("dropped", 0))


def load_events(path: str):
    """Read an obs JSONL file back into ``(events, dropped)``."""
    with open(path) as fh:
        return parse_events_jsonl(fh.read())
