"""repro.obs — observability for the simulator and experiment harness.

Three cooperating pieces (see docs/observability.md):

* :mod:`repro.obs.trace` — request-scoped structured event tracing with a
  bounded ring buffer and deterministic JSONL export;
* :mod:`repro.obs.metrics` — counters, gauges, and period-weighted
  histograms with JSON-ready per-run snapshots;
* :mod:`repro.obs.profiling` — wall-clock stage timing for the experiment
  pipeline (generate → simulate → distance → cluster).
"""

from repro.obs.metrics import Counter, Gauge, MetricsRegistry, PeriodHistogram
from repro.obs.profiling import (
    StageProfiler,
    activated,
    active_profiler,
    profiled_stage,
)
from repro.obs.trace import (
    EVENT_KINDS,
    NULL_COLLECTOR,
    NullCollector,
    ObsEvent,
    RequestSpan,
    TraceCollector,
    events_to_jsonl,
    load_events,
    parse_events_jsonl,
    save_events,
)

__all__ = [
    "Counter",
    "EVENT_KINDS",
    "Gauge",
    "MetricsRegistry",
    "NULL_COLLECTOR",
    "NullCollector",
    "ObsEvent",
    "PeriodHistogram",
    "RequestSpan",
    "StageProfiler",
    "TraceCollector",
    "activated",
    "active_profiler",
    "events_to_jsonl",
    "load_events",
    "parse_events_jsonl",
    "profiled_stage",
    "save_events",
]
