"""Lightweight metrics registry for simulation and experiment runs.

Three instrument types, mirroring what the paper's evaluation actually
reports:

* :class:`Counter` — monotonically increasing event counts (samples taken,
  requests completed, scheduler decisions);
* :class:`Gauge` — last-written values (thresholds in force, wall cycles);
* :class:`PeriodHistogram` — period-weighted value distributions.  The
  paper's metrics are ratios over execution periods of unequal length, so
  observations carry weights and the summary statistics reuse
  :mod:`repro.analysis.stats` (weighted mean / weighted percentile).  An
  :class:`~repro.core.quantile.OnlineQuantile` tracks the streaming
  80-percentile alongside — the same estimator the contention-easing
  scheduler thresholds on — so snapshots exercise its edge cases (empty,
  single observation, duplicate-heavy streams) continuously.

Snapshots are plain nested dicts (JSON-ready, deterministically ordered)
surfaced by ``repro-simulate --metrics-out`` / ``repro-experiments
--metrics-out`` and rendered by :func:`repro.analysis.report.format_metrics`.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.stats import weighted_mean, weighted_percentile
from repro.core.quantile import OnlineQuantile


class Counter:
    """Monotonic event counter."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """Last-written value (None until first set)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


class PeriodHistogram:
    """Weighted value distribution with percentile summaries.

    ``observe(value, weight)`` records one period's metric value weighted
    by the period's length (instructions or cycles); unweighted usage
    passes ``weight=1``.  Non-positive weights are rejected to keep the
    weighted statistics well defined.
    """

    def __init__(self, online_quantile: float = 0.8):
        self._values: List[float] = []
        self._weights: List[float] = []
        self._online = OnlineQuantile(q=online_quantile)

    def observe(self, value: float, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._values.append(float(value))
        self._weights.append(float(weight))
        self._online.observe(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    def mean(self) -> Optional[float]:
        if not self._values:
            return None
        return weighted_mean(self._values, self._weights)

    def percentile(self, q: float) -> Optional[float]:
        if not self._values:
            return None
        return weighted_percentile(self._values, q, self._weights)

    def online_estimate(self) -> Optional[float]:
        """The streaming quantile estimate (None while empty)."""
        return self._online.estimate()

    def snapshot(self) -> dict:
        if not self._values:
            return {
                "count": 0,
                "mean": None,
                "p50": None,
                "p80": None,
                "p95": None,
                "min": None,
                "max": None,
                "p80_online": self.online_estimate(),
            }
        values = np.asarray(self._values)
        return {
            "count": self.count,
            "mean": self.mean(),
            "p50": self.percentile(50.0),
            "p80": self.percentile(80.0),
            "p95": self.percentile(95.0),
            "min": float(values.min()),
            "max": float(values.max()),
            "p80_online": self.online_estimate(),
        }


class MetricsRegistry:
    """Name-keyed instrument registry with per-run snapshots.

    ``counter``/``gauge``/``histogram`` get-or-create; asking for an
    existing name with a different instrument type is an error (silent
    type morphing hides bugs).
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, PeriodHistogram] = {}

    def _check_free(self, name: str, table: dict) -> None:
        for kind, existing in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if existing is not table and name in existing:
                raise ValueError(f"metric {name!r} already registered as a {kind}")

    def counter(self, name: str) -> Counter:
        self._check_free(name, self._counters)
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        self._check_free(name, self._gauges)
        return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str, online_quantile: float = 0.8) -> PeriodHistogram:
        self._check_free(name, self._histograms)
        return self._histograms.setdefault(
            name, PeriodHistogram(online_quantile=online_quantile)
        )

    def snapshot(self) -> dict:
        """Deterministically ordered, JSON-ready state of every instrument."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

    def write_json(self, path: str, extra: Optional[dict] = None) -> None:
        """Persist the snapshot (plus optional extra sections) as JSON."""
        document = dict(self.snapshot())
        if extra:
            document.update(extra)
        with open(path, "w") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
