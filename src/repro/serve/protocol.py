"""Length-prefixed wire protocol for the serve tier.

A connection carries *frames*: a 4-byte big-endian payload length
followed by that many bytes of canonical JSON (sorted keys, no
whitespace — the same encoding convention as the obs/trace JSONL
exports).  Every payload is an object with a ``type`` key.

The first exchange on every connection is a handshake: the client sends
a ``hello`` carrying :data:`PROTOCOL_FORMAT` and :data:`PROTOCOL_VERSION`
plus its role (``instance`` streams events, ``control`` drives the
worker); the server answers ``hello_ack`` with the same format/version
(or an ``error`` frame and a close).  A version mismatch is a loud
:class:`ProtocolError` on both sides, never a silent misparse.

Malformed input — truncated length prefix, truncated payload, an
oversized frame, JSON that does not decode, a payload that is not an
object, a missing ``type`` — always raises :class:`ProtocolError` naming
the frame position.  Event payloads reuse the canonical obs-event dict
encoding (:meth:`repro.obs.trace.ObsEvent.to_dict`), so the bytes an
instance streams are exactly the bytes its JSONL export would hold.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import List, Optional

from repro.obs.trace import ObsEvent

PROTOCOL_FORMAT = "repro-serve-proto"
PROTOCOL_VERSION = 1

#: Upper bound on a single frame's payload (guards against a corrupt or
#: hostile length prefix allocating unbounded memory).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct("!I")

#: Frame types either side may legally send (loud error otherwise).
FRAME_TYPES = frozenset(
    {
        "hello",
        "hello_ack",
        "events",
        "credit",
        "checkpoint",
        "end",
        "end_ack",
        "report",
        "report_ack",
        "shutdown",
        "shutdown_ack",
        "error",
    }
)


class ProtocolError(ValueError):
    """A frame violated the wire protocol (malformed, oversized, foreign
    version, unexpected type).  Protocol errors are not transient: the
    connection that raised one must be closed, not retried."""


class PeerClosedError(ProtocolError, ConnectionError):
    """The peer went away mid-conversation: EOF where a frame was
    expected, or a frame cut off mid-write.  Unlike other protocol
    errors this is how a SIGKILLed worker looks from the instance side,
    so it also subclasses :class:`ConnectionError` — failover links
    catch connection errors and retry, while genuinely malformed frames
    stay fatal."""


def encode_frame(payload: dict) -> bytes:
    """Canonical JSON payload behind a 4-byte big-endian length prefix."""
    frame_type = payload.get("type")
    if frame_type not in FRAME_TYPES:
        raise ProtocolError(f"cannot encode unknown frame type {frame_type!r}")
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES}); batch fewer events per frame"
        )
    return _LENGTH.pack(len(body)) + body


def decode_payload(body: bytes, where: str = "frame") -> dict:
    """Parse one frame payload (loud on malformed bytes)."""
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"{where}: malformed frame payload: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(f"{where}: frame payload is not an object")
    frame_type = payload.get("type")
    if frame_type not in FRAME_TYPES:
        raise ProtocolError(f"{where}: unknown frame type {frame_type!r}")
    return payload


class FrameStream:
    """Frame reader/writer over one asyncio stream pair.

    Tracks the frame count so malformed-frame errors name the position
    (``frame 17``) — the serve tier's debugging depends on it the same
    way JSONL import errors depend on line numbers.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.frames_read = 0
        self.frames_written = 0

    async def read(self) -> Optional[dict]:
        """Read one frame; ``None`` on clean EOF at a frame boundary."""
        prefix = await self.reader.read(_LENGTH.size)
        if not prefix:
            return None
        while len(prefix) < _LENGTH.size:
            more = await self.reader.read(_LENGTH.size - len(prefix))
            if not more:
                raise PeerClosedError(
                    f"frame {self.frames_read}: truncated length prefix "
                    f"({len(prefix)} of {_LENGTH.size} bytes)"
                )
            prefix += more
        (length,) = _LENGTH.unpack(prefix)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame {self.frames_read}: declared payload of {length} "
                f"bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES}); "
                "corrupt stream or foreign protocol"
            )
        try:
            body = await self.reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            raise PeerClosedError(
                f"frame {self.frames_read}: truncated payload "
                f"({len(error.partial)} of {length} bytes)"
            ) from None
        payload = decode_payload(body, where=f"frame {self.frames_read}")
        self.frames_read += 1
        return payload

    async def expect(self, *types: str) -> dict:
        """Read one frame and demand one of ``types`` (``error`` frames
        surface as ProtocolError carrying the peer's message)."""
        payload = await self.read()
        if payload is None:
            raise PeerClosedError(
                f"connection closed while waiting for {'/'.join(types)}"
            )
        if payload["type"] == "error" and "error" not in types:
            raise ProtocolError(f"peer error: {payload.get('message')}")
        if payload["type"] not in types:
            raise ProtocolError(
                f"expected {'/'.join(types)}, got {payload['type']!r}"
            )
        return payload

    async def write(self, payload: dict) -> None:
        self.writer.write(encode_frame(payload))
        self.frames_written += 1
        await self.writer.drain()

    async def close(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (OSError, ConnectionError):
            pass


# -- handshake ----------------------------------------------------------

def hello(role: str, **fields) -> dict:
    return {
        "type": "hello",
        "format": PROTOCOL_FORMAT,
        "version": PROTOCOL_VERSION,
        "role": role,
        **fields,
    }


def check_version(payload: dict) -> dict:
    """Validate a hello/hello_ack's format + version fields (loud)."""
    if payload.get("format") != PROTOCOL_FORMAT:
        raise ProtocolError(
            f"foreign protocol format {payload.get('format')!r} "
            f"(this build speaks {PROTOCOL_FORMAT})"
        )
    if payload.get("version") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {payload.get('version')!r} "
            f"(this build speaks version {PROTOCOL_VERSION})"
        )
    return payload


async def client_handshake(stream: FrameStream, role: str, **fields) -> dict:
    """Send hello, await hello_ack; returns the validated ack payload."""
    await stream.write(hello(role, **fields))
    return check_version(await stream.expect("hello_ack"))


async def server_handshake(stream: FrameStream, **ack_fields) -> dict:
    """Await hello, validate, send hello_ack; returns the hello payload.

    On a version/format mismatch the server answers with an ``error``
    frame (so the client sees *why*) before raising.
    """
    payload = await stream.expect("hello")
    try:
        check_version(payload)
    except ProtocolError as error:
        await stream.write({"type": "error", "message": str(error)})
        raise
    await stream.write(
        {
            "type": "hello_ack",
            "format": PROTOCOL_FORMAT,
            "version": PROTOCOL_VERSION,
            **ack_fields,
        }
    )
    return payload


# -- event payload encoding ---------------------------------------------

def events_frame(events: List[dict]) -> dict:
    """An ``events`` frame carrying canonical obs-event dicts."""
    return {"type": "events", "events": events}


def decode_events(payload: dict, where: str = "events frame") -> List[ObsEvent]:
    """Rebuild :class:`ObsEvent` records from an ``events`` frame (loud)."""
    records = payload.get("events")
    if not isinstance(records, list):
        raise ProtocolError(f"{where}: 'events' must be a list")
    events = []
    for index, record in enumerate(records):
        try:
            events.append(ObsEvent.from_dict(record))
        except (ValueError, TypeError) as error:
            raise ProtocolError(f"{where}, event {index}: {error}") from None
    return events
