"""The ``repro-serve`` command: run, load-test, and report on the fleet.

Three modes::

    # Foreground worker pool (instances connect to the printed sockets);
    # workers that die are restarted with checkpoint/tail-replay failover.
    repro-serve serve --workers 2 --run-dir /tmp/fleet

    # Self-contained load test: N instances stream to M workers, then the
    # fleet report and throughput/latency stats print.  --kill-worker
    # exercises failover mid-run; byte-identity with an unkilled run is
    # the determinism contract.
    repro-serve load-test --instances 3 --workers 2 --workload tpcc \\
        --requests 20 --faults lock_stall:0.2 --report fleet.json

    # Merge saved per-worker reports into the fleet view.
    repro-serve report run-dir/report-w0.json run-dir/report-w1.json
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
import tempfile

from repro.analysis.report import format_metrics
from repro.serve.aggregator import load_worker_report, merge_worker_reports
from repro.serve.service import (
    KillSpec,
    LoadTestOptions,
    PoolConfig,
    WorkerPool,
    run_load_test,
    save_worker_reports,
    shard_name,
)
from repro.workloads.registry import available_workloads


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text!r}")
    return value


def _non_negative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text!r}")
    return value


def _fault_spec(text: str) -> str:
    from repro.faults.schedule import parse_fault_schedule

    try:
        parse_fault_schedule(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Live sharded multi-client online-analysis service",
    )
    modes = parser.add_subparsers(dest="mode", required=True)

    serve = modes.add_parser(
        "serve", help="run a worker pool in the foreground"
    )
    serve.add_argument("--workers", type=_positive_int, default=2)
    serve.add_argument("--run-dir", required=True, metavar="DIR")
    serve.add_argument("--bank", default=None, metavar="PATH",
                       help="shared signature-bank file (repro-serve-bank)")
    serve.add_argument("--checkpoint-every", type=_positive_int, default=256)
    serve.add_argument("--credit", type=_positive_int, default=8)
    serve.add_argument("--window", type=float, default=100_000.0)
    serve.add_argument("--quantile", type=float, default=0.9)
    serve.add_argument("--decisions", action="store_true",
                       help="write per-instance decision logs (JSONL)")
    serve.add_argument("--attribute", action="store_true",
                       help="classify likely fault causes of flagged "
                       "requests in every worker pipeline")

    load = modes.add_parser(
        "load-test", help="self-contained fleet load test"
    )
    load.add_argument("--workload", default="tpcc",
                      help=f"one of {', '.join(available_workloads())}")
    load.add_argument("--instances", type=_positive_int, default=3)
    load.add_argument("--workers", type=_positive_int, default=2)
    load.add_argument("--requests", type=_positive_int, default=20,
                      help="requests per instance (default 20)")
    load.add_argument("--concurrency", type=_positive_int, default=8)
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--faults", type=_fault_spec, default=None,
                      metavar="SPEC",
                      help="composable fault schedule per instance, e.g. "
                      "lock_stall:0.2 or 'gc_pause:0.2+cache_thrash:0.1"
                      "@0-40' (see docs/faults.md)")
    load.add_argument("--arrivals", default=None, metavar="SPEC",
                      help="arrival process per instance "
                      "(poisson:<rps>, onoff:..., zipf:...)")
    load.add_argument("--train", type=_non_negative_int, default=0,
                      metavar="N",
                      help="calibration requests for a shared signature "
                      "bank (0 disables identification; default 0)")
    load.add_argument("--rate", type=float, default=None, metavar="EV/S",
                      help="pace each instance's stream at this many "
                      "events/sec (default: as fast as credit allows)")
    load.add_argument("--backpressure", choices=("block", "shed"),
                      default="block")
    load.add_argument("--queue-limit", type=_positive_int, default=64)
    load.add_argument("--batch", type=_positive_int, default=32)
    load.add_argument("--checkpoint-every", type=_positive_int, default=256)
    load.add_argument("--credit", type=_positive_int, default=8)
    load.add_argument("--window", type=float, default=100_000.0)
    load.add_argument("--quantile", type=float, default=0.9)
    load.add_argument("--kill-worker", type=_non_negative_int, default=None,
                      metavar="INDEX",
                      help="SIGKILL worker INDEX once it has checkpointed "
                      "(failover exercise; decisions must not change)")
    load.add_argument("--run-dir", default=None, metavar="DIR",
                      help="service scratch dir (default: a temp dir)")
    load.add_argument("--decisions", action="store_true",
                      help="write per-instance decision logs under the "
                      "run dir")
    load.add_argument("--attribute", action="store_true",
                      help="classify likely fault causes of flagged "
                      "requests and score them fleet-wide against "
                      "injected ground truth")
    load.add_argument("--report", default=None, metavar="PATH",
                      help="write the canonical fleet report JSON here")
    load.add_argument("--save-worker-reports", action="store_true",
                      help="write per-worker report files under the run dir")
    load.add_argument("--stats-out", default=None, metavar="PATH",
                      help="write wall-clock service stats (JSON; not "
                      "deterministic, kept out of the fleet report)")
    load.add_argument("--quiet", action="store_true")

    report = modes.add_parser(
        "report", help="merge saved worker reports into the fleet view"
    )
    report.add_argument("reports", nargs="+", metavar="WORKER_REPORT.json")
    report.add_argument("--out", default=None, metavar="PATH",
                        help="write the canonical fleet report JSON here")

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.mode == "serve":
        return _mode_serve(args)
    if args.mode == "load-test":
        return _mode_load_test(args, parser)
    return _mode_report(args)


def _mode_serve(args) -> int:
    config = PoolConfig(
        run_dir=args.run_dir,
        workers=args.workers,
        bank_path=args.bank,
        checkpoint_every=args.checkpoint_every,
        credit=args.credit,
        window_instructions=args.window,
        anomaly_quantile=args.quantile,
        decisions=args.decisions,
        attribute=args.attribute,
    )

    async def _serve() -> None:
        pool = WorkerPool(config)
        await pool.start()
        for shard in config.shards:
            print(f"{shard}: {config.socket_path(shard)}")
        print(f"{args.workers} workers up; ^C to stop", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        try:
            await stop.wait()
        finally:
            await pool.stop()

    asyncio.run(_serve())
    return 0


def _mode_load_test(args, parser) -> int:
    if args.workload not in available_workloads():
        parser.error(
            f"unknown workload {args.workload!r}; "
            f"available: {', '.join(available_workloads())}"
        )
    if args.kill_worker is not None and args.kill_worker >= args.workers:
        parser.error(
            f"--kill-worker {args.kill_worker} out of range "
            f"(workers 0..{args.workers - 1})"
        )
    options = LoadTestOptions(
        workload=args.workload,
        instances=args.instances,
        workers=args.workers,
        requests=args.requests,
        concurrency=args.concurrency,
        seed=args.seed,
        faults=args.faults,
        arrivals=args.arrivals,
        train=args.train,
        batch=args.batch,
        queue_limit=args.queue_limit,
        backpressure=args.backpressure,
        rate_events_per_s=args.rate,
        checkpoint_every=args.checkpoint_every,
        credit=args.credit,
        window_instructions=args.window,
        anomaly_quantile=args.quantile,
        decisions=args.decisions,
        attribute=args.attribute,
        kill=(
            KillSpec(shard=shard_name(args.kill_worker))
            if args.kill_worker is not None
            else None
        ),
    )

    if args.run_dir is not None:
        result = asyncio.run(run_load_test(options, args.run_dir))
        run_dir = args.run_dir
    else:
        with tempfile.TemporaryDirectory(prefix="repro-serve-") as run_dir:
            result = asyncio.run(run_load_test(options, run_dir))

    if not args.quiet:
        print(result.fleet.render())
        print()
        print(_stats_lines(result.stats))
        metrics = format_metrics(result.registry.snapshot())
        if metrics:
            print()
            print(metrics)
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(result.fleet.to_json())
            fh.write("\n")
        print(f"fleet report written to {args.report}")
    if args.save_worker_reports:
        if args.run_dir is None:
            parser.error("--save-worker-reports requires --run-dir")
        paths = save_worker_reports(result.worker_reports, args.run_dir)
        print(f"worker reports written: {', '.join(paths)}")
    if args.stats_out:
        import json

        with open(args.stats_out, "w") as fh:
            json.dump(result.stats, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"service stats written to {args.stats_out}")
    return 0


def _stats_lines(stats: dict) -> str:
    latency = stats["ack_latency_ms"]
    latency_text = (
        "n/a"
        if latency is None
        else (
            f"p50={latency['p50']:.2f}ms p95={latency['p95']:.2f}ms "
            f"p99={latency['p99']:.2f}ms max={latency['max']:.2f}ms"
        )
    )
    restarts = sum(stats["worker_restarts"].values())
    return "\n".join(
        [
            "service stats —",
            f"  events: generated={stats['events_generated']}  "
            f"sent={stats['events_sent']}  shed={stats['events_shed']}  "
            f"frames={stats['frames_sent']}",
            f"  sustained: {stats['events_per_second']:.0f} events/s "
            f"over {stats['streaming_seconds']:.2f}s",
            f"  detection latency (frame ack): {latency_text}",
            f"  failover: reconnects={stats['reconnects']}  "
            f"worker_restarts={restarts}",
        ]
    )


def _mode_report(args) -> int:
    documents = [load_worker_report(path) for path in args.reports]
    fleet = merge_worker_reports(documents)
    print(fleet.render())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(fleet.to_json())
            fh.write("\n")
        print(f"fleet report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
