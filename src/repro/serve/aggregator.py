"""Fleet-wide aggregation of per-worker detection reports.

Each shard worker reports what *it* decided: per-instance completed
records plus the per-class prediction-error sums.  One worker's view is
a hash-sharded sample of the fleet; the operator question — how much
anomalous traffic is the fleet seeing, which request classes predict
poorly, is one instance unhealthy — needs the merge this module does.

Determinism is part of the contract: workers are merged in sorted shard
order, instances in sorted id order, and the per-class float sums are
accumulated in that fixed order, so the fleet report is byte-identical
across reruns at fixed seeds — and identical whether or not a worker was
killed and failed over mid-run (the differential test's comparison
surface).  Wall-clock service stats (throughput, restarts, sheds) are
deliberately *not* part of the canonical document; the load-test harness
reports them separately.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.report import format_table
from repro.online.report import _median
from repro.workloads.faults import score_detection

#: What each shard worker writes / reports over the control socket.
#: Defined here (not in worker.py) so importing the package does not
#: pre-import the worker module that ``python -m repro.serve.worker``
#: then executes again as ``__main__``.
WORKER_REPORT_FORMAT = "repro-serve-worker-report"
WORKER_REPORT_VERSION = 1

FLEET_REPORT_FORMAT = "repro-serve-fleet-report"
FLEET_REPORT_VERSION = 1


def validate_worker_report(document: dict, where: str = "worker report") -> dict:
    """Loud structural validation of one worker-report document."""
    if not isinstance(document, dict) or document.get("format") != WORKER_REPORT_FORMAT:
        raise ValueError(f"{where}: not a repro serve worker report")
    if document.get("version") != WORKER_REPORT_VERSION:
        raise ValueError(
            f"{where}: unsupported worker-report version "
            f"{document.get('version')!r}"
        )
    if not isinstance(document.get("shard"), str):
        raise ValueError(f"{where}: missing shard name")
    if not isinstance(document.get("instances"), dict):
        raise ValueError(f"{where}: missing instances object")
    return document


def load_worker_report(path: str) -> dict:
    with open(path) as fh:
        try:
            document = json.load(fh)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: malformed worker report: {error}") from None
    return validate_worker_report(document, where=path)


@dataclass
class FleetReport:
    """The merged fleet-wide view (JSON-ready, canonical)."""

    summary: Dict = field(default_factory=dict)
    per_worker: List[Dict] = field(default_factory=list)
    per_instance: List[Dict] = field(default_factory=list)
    per_class: List[Dict] = field(default_factory=list)
    requests: List[Dict] = field(default_factory=list)
    attribution: Optional[Dict] = None

    def to_json(self) -> str:
        """Canonical serialization (the byte-identity surface)."""
        payload = {
            "format": FLEET_REPORT_FORMAT,
            "version": FLEET_REPORT_VERSION,
            "summary": self.summary,
            "per_worker": self.per_worker,
            "per_instance": self.per_instance,
            "per_class": self.per_class,
            "requests": self.requests,
        }
        # Cause-attribution scoring appears only when workers ran with
        # --attribute, keeping detection-only fleet reports byte-stable.
        if self.attribution is not None:
            payload["attribution"] = self.attribution
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def render(self) -> str:
        """ASCII fleet dashboard for the CLI."""
        s = self.summary
        lines = [
            f"fleet report — {s['workers']} workers, "
            f"{s['instances']} instances",
            f"  requests={s['population']}  events={s['events']}  "
            f"periods={s['periods']}  windows={s['windows']}",
            f"  anomaly: injected={s['injected']}  flagged={s['flagged']}  "
            f"precision={s['precision']:.3f}  recall={s['recall']:.3f}  "
            f"median_ttd_ins={_fmt(s['median_time_to_detect_instructions'])}",
            f"  identify: committed={s['committed']}/{s['population']}  "
            f"label_accuracy={_fmt(s['label_accuracy'])}",
            f"  predict: rms_error={_fmt(s['prediction_rms_error'])}  "
            f"mean_abs_error={_fmt(s['prediction_mean_abs_error'])}",
        ]
        if self.per_worker:
            lines.append("")
            lines.append(
                format_table(
                    self.per_worker,
                    columns=["shard", "instances", "requests", "flagged",
                             "events"],
                    title="per-worker shard view",
                )
            )
        if self.per_instance:
            lines.append("")
            lines.append(
                format_table(
                    self.per_instance,
                    columns=["instance", "workload", "seed", "requests",
                             "injected", "flagged"],
                    title="per-instance fleet view",
                )
            )
        if self.per_class:
            lines.append("")
            lines.append(
                format_table(
                    self.per_class,
                    columns=["class", "requests", "prediction_rms_error",
                             "prediction_mean_abs_error"],
                    title="per-class prediction error",
                )
            )
        if self.attribution is not None:
            a = self.attribution
            accuracy = (
                f"{a['accuracy']:.3f}" if a["accuracy"] is not None else "n/a"
            )
            lines.append("")
            lines.append(
                f"  attribute: detected={a['detected']}  "
                f"correct={a['correct']}  accuracy={accuracy}  "
                f"false_attributions={a['false_attributions']}"
            )
            if a["per_kind"]:
                lines.append(
                    format_table(
                        a["per_kind"],
                        columns=["kind", "injected", "detected", "correct",
                                 "recall", "precision"],
                        title="per-kind cause attribution",
                    )
                )
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "n/a"
    return f"{value:.4g}"


def merge_worker_reports(documents: List[dict]) -> FleetReport:
    """Merge validated worker reports into one :class:`FleetReport`.

    Duplicate shards are an error (a failed-over worker replaces its
    predecessor, never coexists with it in a report set).
    """
    if not documents:
        raise ValueError("no worker reports to merge")
    by_shard: Dict[str, dict] = {}
    for document in documents:
        validate_worker_report(document)
        shard = document["shard"]
        if shard in by_shard:
            raise ValueError(f"duplicate worker report for shard {shard!r}")
        by_shard[shard] = document

    requests: List[Dict] = []
    per_worker: List[Dict] = []
    instance_rows: Dict[int, Dict] = {}
    class_sums: Dict[str, Dict[str, float]] = {}
    events = periods = windows = 0

    for shard in sorted(by_shard):
        document = by_shard[shard]
        shard_requests = 0
        shard_flagged = 0
        shard_events = 0
        instances = document["instances"]
        for instance_key in sorted(instances, key=int):
            instance = int(instance_key)
            view = instances[instance_key]
            shard_events += view["events_seen"]
            events += view["events_seen"]
            periods += view["periods"]
            windows += view["windows"]
            row = instance_rows.get(instance)
            if row is None:
                row = instance_rows[instance] = {
                    "instance": instance,
                    "workload": view["workload"],
                    "seed": view["seed"],
                    "requests": 0,
                    "injected": 0,
                    "flagged": 0,
                }
            for record in view["records"]:
                tagged = dict(record)
                tagged["instance"] = instance
                tagged["shard"] = shard
                requests.append(tagged)
                shard_requests += 1
                row["requests"] += 1
                if record["injected_fault"] is not None:
                    row["injected"] += 1
                if record["flagged"]:
                    row["flagged"] += 1
                    shard_flagged += 1
            # Fixed accumulation order (sorted shard, then sorted
            # instance, then sorted label): float addition must round
            # identically on every rerun for byte-identity.
            for label in sorted(view["class_errors"]):
                sums = view["class_errors"][label]
                accumulator = class_sums.get(label)
                if accumulator is None:
                    accumulator = class_sums[label] = {
                        "n": 0, "abs_sum": 0.0, "sq_sum": 0.0, "weight": 0.0,
                    }
                accumulator["n"] += sums["n"]
                accumulator["abs_sum"] += sums["abs_sum"]
                accumulator["sq_sum"] += sums["sq_sum"]
                accumulator["weight"] += sums["weight"]
        per_worker.append(
            {
                "shard": shard,
                "instances": len(instances),
                "requests": shard_requests,
                "flagged": shard_flagged,
                "events": shard_events,
            }
        )

    # Request ids restart per instance; score on fleet-unique keys.
    flagged_keys = [
        (r["instance"], r["request_id"]) for r in requests if r["flagged"]
    ]
    injected_keys = [
        (r["instance"], r["request_id"])
        for r in requests
        if r["injected_fault"] is not None
    ]
    detection = score_detection(
        flagged_keys, injected_keys, population=len(requests)
    )
    true_positive_ttds = [
        float(r["time_to_detect_instructions"])
        for r in requests
        if r["flagged"]
        and r["injected_fault"] is not None
        and r["time_to_detect_instructions"] is not None
    ]
    commits = [r for r in requests if r["committed_label"] is not None]
    correct = [r for r in commits if r["label_correct"]]

    per_class = []
    total_abs = total_sq = total_weight = 0.0
    for label in sorted(class_sums):
        sums = class_sums[label]
        total_abs += sums["abs_sum"]
        total_sq += sums["sq_sum"]
        total_weight += sums["weight"]
        per_class.append(
            {
                "class": label,
                "requests": sum(
                    1
                    for r in requests
                    if (r["committed_label"] or r["kind"]) == label
                ),
                "prediction_rms_error": (
                    (sums["sq_sum"] / sums["weight"]) ** 0.5
                    if sums["weight"] > 0
                    else None
                ),
                "prediction_mean_abs_error": (
                    sums["abs_sum"] / sums["weight"]
                    if sums["weight"] > 0
                    else None
                ),
            }
        )

    summary = {
        "workers": len(by_shard),
        "instances": len(instance_rows),
        "population": detection["population"],
        "injected": detection["injected"],
        "flagged": detection["flagged"],
        "precision": detection["precision"],
        "recall": detection["recall"],
        "median_time_to_detect_instructions": _median(true_positive_ttds),
        "committed": len(commits),
        "label_accuracy": len(correct) / len(commits) if commits else None,
        "median_commit_instructions": _median(
            [float(r["commit_instructions"]) for r in commits]
        ),
        "prediction_rms_error": (
            (total_sq / total_weight) ** 0.5 if total_weight > 0 else None
        ),
        "prediction_mean_abs_error": (
            total_abs / total_weight if total_weight > 0 else None
        ),
        "events": events,
        "periods": periods,
        "windows": windows,
    }
    attribution = None
    if any("attributed_cause" in record for record in requests):
        from repro.online.attribution import score_attribution

        attribution = score_attribution(requests)

    return FleetReport(
        summary=summary,
        per_worker=per_worker,
        per_instance=[
            instance_rows[instance] for instance in sorted(instance_rows)
        ],
        per_class=per_class,
        requests=requests,
        attribution=attribution,
    )
