"""Worker-pool supervision and the end-to-end load-test harness.

:class:`WorkerPool` runs each shard worker as a subprocess
(``python -m repro.serve.worker``) listening on a unix socket under the
run directory.  The supervisor task watches the processes and restarts
any that die unexpectedly — the failover path: the restarted worker
reloads its per-instance checkpoints, instances reconnect and replay
their retained tails, and the seq cursors make the overlap idempotent.

:func:`run_load_test` is the whole service in one call: train an optional
shared signature bank, pre-generate the instances' deterministic event
streams, start the pool, stream every instance concurrently (optionally
paced, optionally SIGKILLing a chosen worker after its first checkpoint
to exercise failover), then collect worker reports over control
connections, merge them into a :class:`~repro.serve.aggregator.
FleetReport`, and return wall-clock service stats (sustained events/sec,
ack-latency percentiles, sheds, reconnects, restarts) alongside.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.serve.aggregator import FleetReport, merge_worker_reports
from repro.serve.instance import (
    InstanceClient,
    InstanceSpec,
    generate_instance_events,
)
from repro.serve.protocol import FrameStream, client_handshake
from repro.serve.router import HashRing
from repro.serve.worker import save_bank


def shard_name(index: int) -> str:
    return f"w{index}"


@dataclass
class PoolConfig:
    """Shape of one worker pool rooted at ``run_dir``."""

    run_dir: str
    workers: int = 2
    bank_path: Optional[str] = None
    checkpoint_every: int = 256
    credit: int = 8
    window_instructions: float = 100_000.0
    anomaly_quantile: float = 0.9
    decisions: bool = False
    attribute: bool = False

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    @property
    def shards(self) -> List[str]:
        return [shard_name(index) for index in range(self.workers)]

    def socket_path(self, shard: str) -> str:
        return os.path.join(self.run_dir, f"{shard}.sock")

    def checkpoint_dir(self, shard: str) -> str:
        return os.path.join(self.run_dir, "checkpoints", shard)

    def decisions_dir(self, shard: str) -> str:
        return os.path.join(self.run_dir, "decisions", shard)


class WorkerPool:
    """Subprocess shard workers + restart-on-death supervision."""

    def __init__(self, config: PoolConfig):
        self.config = config
        self.ring = HashRing(config.shards)
        self.processes: Dict[str, subprocess.Popen] = {}
        self.restarts: Dict[str, int] = {shard: 0 for shard in config.shards}
        self._supervisor: Optional[asyncio.Task] = None
        self._stopping = False

    @property
    def socket_paths(self) -> Dict[str, str]:
        return {
            shard: self.config.socket_path(shard)
            for shard in self.config.shards
        }

    def _spawn(self, shard: str) -> subprocess.Popen:
        config = self.config
        command = [
            sys.executable, "-m", "repro.serve.worker",
            "--shard", shard,
            "--socket", config.socket_path(shard),
            "--checkpoint-dir", config.checkpoint_dir(shard),
            "--checkpoint-every", str(config.checkpoint_every),
            "--credit", str(config.credit),
            "--window", str(config.window_instructions),
            "--quantile", str(config.anomaly_quantile),
        ]
        if config.bank_path:
            command += ["--bank", config.bank_path]
        if config.decisions:
            command += ["--decisions-dir", config.decisions_dir(shard)]
        if config.attribute:
            command += ["--attribute"]
        env = dict(os.environ)
        # The pool must work from a source checkout: make sure the child
        # resolves the same `repro` package this process imported.
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH")
        if src_root not in (existing or "").split(os.pathsep):
            env["PYTHONPATH"] = (
                f"{src_root}{os.pathsep}{existing}" if existing else src_root
            )
        return subprocess.Popen(command, env=env)

    async def start(self) -> None:
        os.makedirs(self.config.run_dir, exist_ok=True)
        for shard in self.config.shards:
            self.processes[shard] = self._spawn(shard)
        await asyncio.gather(
            *(
                wait_for_socket(self.config.socket_path(shard))
                for shard in self.config.shards
            )
        )
        self._supervisor = asyncio.create_task(self._supervise())

    async def _supervise(self) -> None:
        """Restart any worker that dies while the pool is live."""
        while not self._stopping:
            for shard, process in self.processes.items():
                if process.poll() is not None and not self._stopping:
                    self.restarts[shard] += 1
                    self.processes[shard] = self._spawn(shard)
                    await wait_for_socket(self.config.socket_path(shard))
            await asyncio.sleep(0.02)

    def kill(self, shard: str) -> None:
        """SIGKILL one worker (the supervisor will restart it)."""
        self.processes[shard].send_signal(signal.SIGKILL)

    async def collect_reports(self) -> List[dict]:
        """Fetch every worker's (report, stats) over control connections."""
        return await asyncio.gather(
            *(
                control_request(self.config.socket_path(shard), "report")
                for shard in self.config.shards
            )
        )

    async def stop(self) -> None:
        """Graceful shutdown: control frame first, SIGTERM as fallback."""
        self._stopping = True
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
        for shard, process in self.processes.items():
            if process.poll() is not None:
                continue
            try:
                await control_request(
                    self.config.socket_path(shard), "shutdown", timeout_s=2.0
                )
            except (OSError, ConnectionError, ValueError, asyncio.TimeoutError):
                process.terminate()
        deadline = time.monotonic() + 5.0
        for process in self.processes.values():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                await asyncio.to_thread(process.wait, remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                await asyncio.to_thread(process.wait)


async def wait_for_socket(path: str, timeout_s: float = 20.0) -> None:
    """Wait until a worker's unix socket accepts connections."""
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            reader, writer = await asyncio.open_unix_connection(path)
        except (OSError, ConnectionError):
            if time.monotonic() >= deadline:
                raise TimeoutError(f"worker socket {path} never came up")
            await asyncio.sleep(0.02)
            continue
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):
            pass
        return


async def control_request(
    socket_path: str, request: str, timeout_s: float = 20.0
) -> dict:
    """One control round trip (``report`` or ``shutdown``)."""

    async def _round_trip() -> dict:
        reader, writer = await asyncio.open_unix_connection(socket_path)
        stream = FrameStream(reader, writer)
        try:
            await client_handshake(stream, "control")
            await stream.write({"type": request})
            return await stream.expect(f"{request}_ack")
        finally:
            await stream.close()

    return await asyncio.wait_for(_round_trip(), timeout=timeout_s)


# -- the load-test harness ----------------------------------------------

@dataclass
class KillSpec:
    """Kill one worker mid-run to exercise failover."""

    shard: str
    #: SIGKILL once the shard has written at least this many instance
    #: checkpoint files (1 = as soon as any durable state exists, so the
    #: restart genuinely resumes rather than recomputing from scratch).
    after_checkpoints: int = 1


@dataclass
class LoadTestOptions:
    workload: str = "tpcc"
    instances: int = 3
    workers: int = 2
    requests: int = 20
    concurrency: int = 8
    seed: int = 0
    faults: Optional[str] = None
    arrivals: Optional[str] = None
    #: Calibration requests for a shared signature bank (0 disables the
    #: identification stage fleet-wide).
    train: int = 0
    batch: int = 32
    queue_limit: int = 64
    backpressure: str = "block"
    rate_events_per_s: Optional[float] = None
    checkpoint_every: int = 256
    credit: int = 8
    window_instructions: float = 100_000.0
    anomaly_quantile: float = 0.9
    decisions: bool = False
    attribute: bool = False
    kill: Optional[KillSpec] = None

    def __post_init__(self):
        if self.instances < 1:
            raise ValueError("instances must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    def instance_specs(self) -> List[InstanceSpec]:
        """Deterministic per-instance identities: seeds are spread so no
        two instances replay the same traffic."""
        return [
            InstanceSpec(
                instance=index,
                workload=self.workload,
                requests=self.requests,
                concurrency=self.concurrency,
                seed=self.seed + 1000 * index,
                faults=self.faults,
                arrivals=self.arrivals,
            )
            for index in range(self.instances)
        ]


@dataclass
class LoadTestResult:
    fleet: FleetReport
    worker_reports: List[dict]
    stats: Dict = field(default_factory=dict)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)


async def run_load_test(
    options: LoadTestOptions, run_dir: str
) -> LoadTestResult:
    pool_config = PoolConfig(
        run_dir=run_dir,
        workers=options.workers,
        checkpoint_every=options.checkpoint_every,
        credit=options.credit,
        window_instructions=options.window_instructions,
        anomaly_quantile=options.anomaly_quantile,
        decisions=options.decisions,
        attribute=options.attribute,
    )
    os.makedirs(run_dir, exist_ok=True)
    if options.train > 0:
        from repro.online.pipeline import train_identifier
        from repro.workloads.registry import make_workload

        identifier = train_identifier(
            make_workload(options.workload),
            num_requests=options.train,
            seed=options.seed + 10_000,
            window_instructions=options.window_instructions,
        )
        pool_config.bank_path = os.path.join(run_dir, "bank.json")
        save_bank(identifier, pool_config.bank_path)

    # Deterministic part first: the instances' event streams exist before
    # a single byte hits a socket (the streaming phase is then a pure
    # delivery problem, which is what the throughput numbers measure).
    specs = options.instance_specs()
    event_streams = [
        await asyncio.to_thread(generate_instance_events, spec)
        for spec in specs
    ]
    total_events = sum(len(events) for events in event_streams)

    pool = WorkerPool(pool_config)
    await pool.start()
    registry = MetricsRegistry()
    kill_task: Optional[asyncio.Task] = None
    try:
        clients = [
            InstanceClient(
                spec,
                events,
                pool.ring,
                pool.socket_paths,
                batch=options.batch,
                queue_limit=options.queue_limit,
                backpressure=options.backpressure,
                rate_events_per_s=options.rate_events_per_s,
                registry=registry,
            )
            for spec, events in zip(specs, event_streams)
        ]
        if options.kill is not None:
            kill_task = asyncio.create_task(
                _kill_after_checkpoint(pool, options.kill)
            )
        streaming_started = time.monotonic()
        per_instance_stats = await asyncio.gather(
            *(client.run() for client in clients)
        )
        streaming_seconds = time.monotonic() - streaming_started
        if kill_task is not None:
            await kill_task
        responses = await pool.collect_reports()
    finally:
        if kill_task is not None and not kill_task.done():
            kill_task.cancel()
        await pool.stop()

    worker_reports = [response["report"] for response in responses]
    worker_stats = [response["stats"] for response in responses]
    fleet = merge_worker_reports(worker_reports)

    latencies = sorted(
        latency
        for stats in per_instance_stats
        for latency in stats.ack_latencies
    )
    stats = {
        "instances": options.instances,
        "workers": options.workers,
        "events_generated": total_events,
        "events_sent": sum(s.events_sent for s in per_instance_stats),
        "events_shed": sum(s.events_shed for s in per_instance_stats),
        "frames_sent": sum(s.frames_sent for s in per_instance_stats),
        "reconnects": sum(s.reconnects for s in per_instance_stats),
        "worker_restarts": dict(pool.restarts),
        "streaming_seconds": streaming_seconds,
        "events_per_second": (
            sum(s.events_sent for s in per_instance_stats) / streaming_seconds
            if streaming_seconds > 0
            else 0.0
        ),
        "ack_latency_ms": _latency_summary(latencies),
        "worker_stats": worker_stats,
    }
    return LoadTestResult(
        fleet=fleet,
        worker_reports=worker_reports,
        stats=stats,
        registry=registry,
    )


def _latency_summary(sorted_latencies: List[float]) -> Optional[dict]:
    if not sorted_latencies:
        return None

    def at(q: float) -> float:
        index = min(
            len(sorted_latencies) - 1, int(q * (len(sorted_latencies) - 1))
        )
        return sorted_latencies[index] * 1e3

    return {
        "p50": at(0.50),
        "p95": at(0.95),
        "p99": at(0.99),
        "max": sorted_latencies[-1] * 1e3,
        "samples": len(sorted_latencies),
    }


async def _kill_after_checkpoint(pool: WorkerPool, kill: KillSpec) -> None:
    """SIGKILL the target once it has durable checkpoints to resume from."""
    checkpoint_dir = pool.config.checkpoint_dir(kill.shard)
    while True:
        try:
            written = [
                name
                for name in os.listdir(checkpoint_dir)
                if name.startswith("instance-") and name.endswith(".json")
            ]
        except FileNotFoundError:
            written = []
        if len(written) >= kill.after_checkpoints:
            pool.kill(kill.shard)
            return
        await asyncio.sleep(0.01)


def save_worker_reports(reports: List[dict], run_dir: str) -> List[str]:
    """Write per-worker report files (canonical JSON) under ``run_dir``."""
    paths = []
    for report in reports:
        path = os.path.join(run_dir, f"report-{report['shard']}.json")
        with open(path, "w") as fh:
            fh.write(json.dumps(report, sort_keys=True, separators=(",", ":")))
            fh.write("\n")
        paths.append(path)
    return paths
