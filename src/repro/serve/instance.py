"""Simulated application instances and their streaming clients.

An *instance* is one simulated application server: a workload (optionally
fault-injecting), an arrival process from the traffic layer, and a seed.
:func:`generate_instance_events` runs the (fastpath) simulator with a
kind-filtered collector and yields the canonical obs event stream the
online pipelines consume — deterministic, so the serve tier can be
load-tested and failure-tested against byte-identity expectations.

:class:`InstanceClient` streams one instance's events to the worker pool:

* **Routing** — each event goes to ``ring.shard_for(instance, request_id)``;
  events without a request id (``run_start``) broadcast to every shard,
  since any shard may own requests that need the run metadata.
* **Backpressure** — per-connection bounded queues feed one link task per
  shard; ``block`` mode awaits space (credit backpressure propagates to
  the producer), ``shed`` mode drops events when the queue is full and
  counts them (``serve_events_shed``).  The worker side grants
  frames-in-flight credit at handshake; a link never exceeds it.
* **Failover** — every sent event stays in a retained tail until the
  worker acknowledges a covering checkpoint.  On a connection loss the
  link reconnects (with backoff, up to a deadline) and replays the tail;
  the worker pipeline's seq cursor deduplicates, so a crash between
  checkpoints loses nothing and double-applies nothing.

Service metrics land in an optional :class:`~repro.obs.metrics.
MetricsRegistry` (``serve_events_sent``, ``serve_frames_sent``,
``serve_events_shed``, ``serve_reconnects``, ``serve_checkpoint_acks``,
``serve_ack_latency_ms``), which is how the load-test harness surfaces
backpressure and detection latency.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.obs.trace import ObsEvent, TraceCollector
from repro.online.pipeline import SUBSCRIBED_KINDS
from repro.serve.protocol import FrameStream, client_handshake, events_frame
from repro.serve.router import HashRing
from repro.workloads.registry import make_faulted_workload, make_workload

#: Sentinel closing each link's queue.
_END = object()


@dataclass(frozen=True)
class InstanceSpec:
    """One simulated application instance (deterministic identity)."""

    instance: int
    workload: str
    requests: int = 20
    concurrency: int = 8
    seed: int = 0
    #: Fault-injection spec (``kind:rate``) or None for clean traffic.
    faults: Optional[str] = None
    #: Arrival-process spec (``poisson:400`` ...) or None for the
    #: closed loop.
    arrivals: Optional[str] = None

    def __post_init__(self):
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")


def generate_instance_events(spec: InstanceSpec) -> List[ObsEvent]:
    """Run the instance's simulator; return its canonical event stream."""
    workload = (
        make_faulted_workload(spec.workload, spec.faults)
        if spec.faults
        else make_workload(spec.workload)
    )
    traffic = None
    if spec.arrivals and spec.arrivals != "closed":
        from repro.traffic import TrafficConfig, parse_arrivals

        traffic = TrafficConfig(arrivals=parse_arrivals(spec.arrivals))
    collector = TraceCollector(capacity=None, kinds=SUBSCRIBED_KINDS)
    config = SimConfig(
        sampling=SamplingPolicy.interrupt(workload.sampling_period_us),
        num_requests=spec.requests,
        concurrency=min(spec.concurrency, spec.requests),
        seed=spec.seed,
        traffic=traffic,
        collector=collector,
    )
    ServerSimulator(workload, config).run()
    return collector.events


@dataclass
class StreamStats:
    """What one instance's streaming run did (wall-clock side)."""

    events_sent: int = 0
    frames_sent: int = 0
    events_shed: int = 0
    reconnects: int = 0
    checkpoint_acks: int = 0
    #: Seconds from frame send (or scheduled emission under pacing) to
    #: the worker's covering credit ack — the detection-latency signal.
    ack_latencies: List[float] = field(default_factory=list)

    def merge(self, other: "StreamStats") -> None:
        self.events_sent += other.events_sent
        self.frames_sent += other.frames_sent
        self.events_shed += other.events_shed
        self.reconnects += other.reconnects
        self.checkpoint_acks += other.checkpoint_acks
        self.ack_latencies.extend(other.ack_latencies)


class _WorkerLink:
    """One instance→shard connection: batching, credit, tail replay."""

    def __init__(
        self,
        instance: int,
        shard: str,
        socket_path: str,
        *,
        batch: int,
        queue_limit: int,
        backpressure: str,
        connect_deadline_s: float,
        stats: StreamStats,
    ):
        self.instance = instance
        self.shard = shard
        self.socket_path = socket_path
        self.batch = batch
        self.backpressure = backpressure
        self.connect_deadline_s = connect_deadline_s
        self.stats = stats
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_limit)
        #: (event_dict, enqueue_time) sent but not yet checkpoint-acked.
        self.retained: deque = deque()
        #: Send time of each frame awaiting its credit ack (FIFO).
        self.outstanding: deque = deque()
        self.credit = 1  # refreshed by hello_ack

    # -- producer side --------------------------------------------------

    async def offer(self, event_dict: dict, when: float) -> None:
        if self.backpressure == "shed":
            try:
                self.queue.put_nowait((event_dict, when))
            except asyncio.QueueFull:
                self.stats.events_shed += 1
        else:
            await self.queue.put((event_dict, when))

    async def finish(self) -> None:
        await self.queue.put((_END, 0.0))

    # -- connection side ------------------------------------------------

    async def _connect(self) -> FrameStream:
        """Connect with retry until the deadline (workers restart)."""
        deadline = time.monotonic() + self.connect_deadline_s
        delay = 0.02
        while True:
            try:
                reader, writer = await asyncio.open_unix_connection(
                    self.socket_path
                )
            except (OSError, ConnectionError):
                if time.monotonic() >= deadline:
                    raise
                await asyncio.sleep(delay)
                delay = min(delay * 2, 0.5)
                continue
            stream = FrameStream(reader, writer)
            ack = await client_handshake(
                stream, "instance", instance=self.instance
            )
            self.credit = int(ack.get("credit", 1))
            return stream

    async def _send_frame(
        self, stream: FrameStream, events: List, in_flight: int
    ) -> int:
        """Send one events frame; drain acks until under the credit cap."""
        await stream.write(events_frame([record for record, _ in events]))
        sent_at = time.monotonic()
        self.retained.extend(events)
        self.stats.frames_sent += 1
        self.stats.events_sent += len(events)
        in_flight += 1
        # Latency clock starts at the scheduled emission time under
        # pacing (queueing delay counts), else at the send.
        oldest_pending = min(when for _, when in events)
        self.outstanding.append(min(sent_at, oldest_pending))
        while in_flight >= self.credit:
            payload = await stream.expect("credit", "checkpoint")
            if payload["type"] == "checkpoint":
                self._trim_retained(payload["through_seq"])
            else:
                in_flight -= 1
                self._record_ack()
        return in_flight

    def _trim_retained(self, through_seq: int) -> None:
        self.stats.checkpoint_acks += 1
        retained = self.retained
        while retained and retained[0][0]["seq"] <= through_seq:
            retained.popleft()

    def _record_ack(self) -> None:
        if self.outstanding:
            self.stats.ack_latencies.append(
                time.monotonic() - self.outstanding.popleft()
            )

    async def _drain_until(self, stream: FrameStream, *types: str) -> dict:
        """Read frames, folding checkpoints, until one of ``types``."""
        while True:
            payload = await stream.expect("credit", "checkpoint", *types)
            if payload["type"] == "checkpoint":
                self._trim_retained(payload["through_seq"])
            elif payload["type"] in types:
                return payload
            else:
                self._record_ack()

    async def run(self) -> None:
        """Stream the queue to the worker; survive worker restarts.

        The only exit is a successful ``end_ack``: a worker that dies
        during the end handshake still holds unacked tail state, so the
        link reconnects and replays even after the queue is drained.
        """
        stream: Optional[FrameStream] = None
        in_flight = 0
        done = False
        pending: List = []  # batch being retried across reconnects
        while True:
            try:
                if stream is None:
                    stream = await self._connect()
                    in_flight = 0
                    # Replay the retained tail: everything sent since the
                    # last checkpoint ack.  The worker's seq cursor skips
                    # whatever it already folded in.
                    tail = list(self.retained)
                    self.retained.clear()
                    for start in range(0, len(tail), self.batch):
                        in_flight = await self._send_frame(
                            stream, tail[start:start + self.batch], in_flight
                        )
                while True:
                    if not pending and not done:
                        item = await self.queue.get()
                        if item[0] is _END:
                            done = True
                        else:
                            pending.append(item)
                            while len(pending) < self.batch:
                                try:
                                    item = self.queue.get_nowait()
                                except asyncio.QueueEmpty:
                                    break
                                if item[0] is _END:
                                    done = True
                                    break
                                pending.append(item)
                    if pending:
                        in_flight = await self._send_frame(
                            stream, pending, in_flight
                        )
                        pending = []
                    if done:
                        await stream.write({"type": "end"})
                        await self._drain_until(stream, "end_ack")
                        await stream.close()
                        return
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                # Worker died (failover in progress): the batch being sent
                # may or may not have arrived.  Re-retain it and replay;
                # seq deduplication makes the overlap harmless.
                if stream is not None:
                    await stream.close()
                    stream = None
                if pending:
                    self.retained.extend(pending)
                    pending = []
                # Frames lost with the connection re-time on replay.
                self.outstanding.clear()
                self.stats.reconnects += 1


class InstanceClient:
    """Stream one instance's events to the sharded worker pool."""

    def __init__(
        self,
        spec: InstanceSpec,
        events: List[ObsEvent],
        ring: HashRing,
        socket_paths: Dict[str, str],
        *,
        batch: int = 32,
        queue_limit: int = 64,
        backpressure: str = "block",
        rate_events_per_s: Optional[float] = None,
        connect_deadline_s: float = 30.0,
        registry=None,
    ):
        if backpressure not in ("block", "shed"):
            raise ValueError(
                f"backpressure must be 'block' or 'shed', got {backpressure!r}"
            )
        if set(socket_paths) != set(ring.shards):
            raise ValueError("socket_paths must cover exactly the ring's shards")
        self.spec = spec
        self.events = events
        self.ring = ring
        self.rate = rate_events_per_s
        self.stats = StreamStats()
        self.registry = registry
        self.links = {
            shard: _WorkerLink(
                spec.instance,
                shard,
                socket_paths[shard],
                batch=batch,
                queue_limit=queue_limit,
                backpressure=backpressure,
                connect_deadline_s=connect_deadline_s,
                stats=StreamStats(),
            )
            for shard in ring.shards
        }

    async def run(self) -> StreamStats:
        link_tasks = [
            asyncio.create_task(link.run()) for link in self.links.values()
        ]
        try:
            ring = self.ring
            instance = self.spec.instance
            links = self.links
            start = time.monotonic()
            gap = 1.0 / self.rate if self.rate else 0.0
            for index, event in enumerate(self.events):
                if gap:
                    scheduled = start + index * gap
                    delay = scheduled - time.monotonic()
                    if delay > 0:
                        await asyncio.sleep(delay)
                else:
                    scheduled = time.monotonic()
                record = event.to_dict()
                if event.request_id is None:
                    for link in links.values():
                        await link.offer(record, scheduled)
                else:
                    shard = ring.shard_for(instance, event.request_id)
                    await links[shard].offer(record, scheduled)
            for link in links.values():
                await link.finish()
            await asyncio.gather(*link_tasks)
        except BaseException:
            for task in link_tasks:
                task.cancel()
            raise
        for link in self.links.values():
            self.stats.merge(link.stats)
        self._publish_metrics()
        return self.stats

    def _publish_metrics(self) -> None:
        if self.registry is None:
            return
        stats = self.stats
        self.registry.counter("serve_events_sent").inc(stats.events_sent)
        self.registry.counter("serve_frames_sent").inc(stats.frames_sent)
        self.registry.counter("serve_events_shed").inc(stats.events_shed)
        self.registry.counter("serve_reconnects").inc(stats.reconnects)
        self.registry.counter("serve_checkpoint_acks").inc(
            stats.checkpoint_acks
        )
        latency = self.registry.histogram("serve_ack_latency_ms")
        for seconds in stats.ack_latencies:
            latency.observe(seconds * 1e3)
