"""Consistent-hash routing of request ids onto worker shards.

The serve tier must route every event of a request to the same shard
worker (the per-request streaming state lives there), keep the mapping
stable across processes and runs (failover replays depend on it), and
move as few requests as possible when the pool grows or shrinks — the
classic consistent-hashing contract.

:class:`HashRing` places ``replicas`` virtual points per shard on a
64-bit ring using BLAKE2b (seedless and process-independent, unlike
Python's randomized ``hash``); a key is served by the first point at or
clockwise after the key's own position.  Removing a shard reassigns only
the keys that shard owned; adding one steals only the keys it now owns.
The hypothesis suite (``tests/serve/test_router.py``) pins both
properties plus cross-instantiation stability.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

#: Virtual points per shard.  More points → better balance, slower
#: mutation; 64 keeps the max/mean shard load under ~1.5 for small pools.
DEFAULT_REPLICAS = 64


def stable_hash(key: str) -> int:
    """Process-independent 64-bit hash (BLAKE2b, big-endian)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def request_key(instance: object, request_id: object) -> str:
    """The routing key for one request of one instance.

    Request ids restart from 0 on every instance, so the instance id is
    folded in; within an instance the mapping is consistent hashing on
    the request id.
    """
    return f"{instance}/{request_id}"


class HashRing:
    """A consistent-hash ring over named shards."""

    def __init__(self, shards: Iterable[str] = (), replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        #: Sorted (point, shard) pairs; the tuple sort makes the rare
        #: point collision deterministic (lowest shard name wins).
        self._points: List[Tuple[int, str]] = []
        self._shards: set = set()
        for shard in shards:
            self.add_shard(shard)

    # -- membership -----------------------------------------------------

    @property
    def shards(self) -> List[str]:
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def add_shard(self, shard: str) -> None:
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} already on the ring")
        self._shards.add(shard)
        for replica in range(self.replicas):
            pair = (stable_hash(f"{shard}#{replica}"), shard)
            bisect.insort(self._points, pair)

    def remove_shard(self, shard: str) -> None:
        if shard not in self._shards:
            raise ValueError(f"shard {shard!r} not on the ring")
        self._shards.discard(shard)
        self._points = [p for p in self._points if p[1] != shard]

    # -- lookup ---------------------------------------------------------

    def lookup(self, key: str) -> str:
        """The shard owning ``key`` (first point clockwise, wrapping)."""
        if not self._points:
            raise ValueError("hash ring has no shards")
        position = stable_hash(key)
        # bisect on (position,) finds the first point with point-hash
        # >= position regardless of its shard name.
        index = bisect.bisect_left(self._points, (position,))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def shard_for(self, instance: object, request_id: object) -> str:
        return self.lookup(request_key(instance, request_id))

    def assignment(self, keys: Iterable[str]) -> Dict[str, str]:
        """Map each key to its shard (bulk form, for tests/inspection)."""
        return {key: self.lookup(key) for key in keys}
