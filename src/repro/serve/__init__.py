"""``repro.serve`` — the live sharded multi-client analysis service.

The streaming runtime (:mod:`repro.online`) consumes one event stream
in-process.  This package promotes it to an actual service: N simulated
application instances stream canonical-JSONL obs events over asyncio
sockets to a sharded pool of :class:`~repro.online.pipeline.OnlinePipeline`
workers, routed by consistent hashing on request id, with credit-based
backpressure, periodic worker checkpointing (the byte-identical
``repro-online-checkpoint`` v1 format) and kill/failover, and an
aggregation tier merging per-worker detection reports into a fleet-wide
view.

Layers, bottom up:

* :mod:`repro.serve.protocol` — length-prefixed wire frames with a
  protocol-version handshake and loud malformed-frame errors;
* :mod:`repro.serve.router` — the consistent-hash ring assigning request
  ids to worker shards (minimal movement on add/remove);
* :mod:`repro.serve.worker` — the shard worker: per-instance pipelines,
  periodic atomic checkpoints, decision logs, worker reports;
* :mod:`repro.serve.instance` — the simulated application instance and
  its streaming client (retained-tail replay across reconnects);
* :mod:`repro.serve.aggregator` — fleet-wide merge of worker reports
  (canonical JSON + ASCII render);
* :mod:`repro.serve.service` — subprocess worker pool, failover
  supervisor, and the load-test harness;
* :mod:`repro.serve.cli` — the ``repro-serve`` command (serve /
  load-test / report).

Determinism contract: per-instance decision streams — and the aggregated
fleet report — are a pure function of the instance specs and seeds.
Killing a worker mid-run and letting failover replay the tail yields
byte-identical decisions (see ``tests/serve/test_failover.py``).
"""

from repro.serve.aggregator import FleetReport, merge_worker_reports
from repro.serve.protocol import PROTOCOL_VERSION, PeerClosedError, ProtocolError
from repro.serve.router import HashRing

__all__ = [
    "FleetReport",
    "HashRing",
    "PROTOCOL_VERSION",
    "PeerClosedError",
    "ProtocolError",
    "merge_worker_reports",
]
