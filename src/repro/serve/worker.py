"""The shard worker: one :class:`OnlinePipeline` per connected instance.

A worker owns one shard of the consistent-hash ring.  Each application
instance opens one connection and streams the subset of its obs events
whose request ids route here (plus the request-id-less broadcast events
every shard needs, e.g. ``run_start``).  Per instance the worker runs a
dedicated :class:`~repro.online.pipeline.OnlinePipeline` — TCP/unix
stream ordering preserves the instance's emission order, so every
pipeline's decision stream is a pure function of the instance spec, no
matter how connections from different instances interleave.

Durability: every ``checkpoint_every`` processed events the worker
writes the instance pipeline's full state as a ``repro-online-checkpoint``
v1 document (atomic temp + rename, so a SIGKILL mid-write can never leave
a truncated file) and tells the instance the covered sequence number; the
instance then trims its retained replay tail.  A restarted worker loads
the checkpoints, rewrites its decision logs from the restored records,
and relies on the pipelines' seq cursors to deduplicate the replayed
tail — decisions come out byte-identical to an uninterrupted run.

Backpressure: the worker grants ``credit`` frames-in-flight at handshake
and returns one credit per processed events frame, so a slow worker
stalls its senders instead of buffering unboundedly.

Run a worker in-process via :class:`ShardWorker`, or as a subprocess via
``python -m repro.serve.worker`` (what the supervisor's failover path
SIGKILLs and restarts).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.identification import OnlineIdentifier
from repro.obs.trace import ObsEvent
from repro.online.checkpoint import (
    CheckpointError,
    checkpoint_to_json,
    load_checkpoint,
)
from repro.online.pipeline import OnlineConfig, OnlinePipeline
from repro.serve.aggregator import WORKER_REPORT_FORMAT, WORKER_REPORT_VERSION
from repro.serve.protocol import (
    PROTOCOL_FORMAT,
    PROTOCOL_VERSION,
    FrameStream,
    ProtocolError,
    check_version,
    decode_events,
)

BANK_FORMAT = "repro-serve-bank"
BANK_VERSION = 1


def save_bank(identifier: OnlineIdentifier, path: str) -> None:
    """Persist a trained signature bank for the worker pool (canonical)."""
    payload = {
        "format": BANK_FORMAT,
        "version": BANK_VERSION,
        "identifier": identifier.to_state(),
    }
    with open(path, "w") as fh:
        fh.write(json.dumps(payload, sort_keys=True, separators=(",", ":")))
        fh.write("\n")


def load_bank(path: str) -> OnlineIdentifier:
    with open(path) as fh:
        text = fh.read()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: malformed bank file: {error}") from None
    if not isinstance(payload, dict) or payload.get("format") != BANK_FORMAT:
        raise ValueError(f"{path}: not a repro serve bank file")
    if payload.get("version") != BANK_VERSION:
        raise ValueError(
            f"{path}: unsupported bank version {payload.get('version')!r}"
        )
    return OnlineIdentifier.from_state(payload["identifier"])


@dataclass
class WorkerConfig:
    """Everything one shard worker needs (CLI flags mirror the fields)."""

    shard: str
    socket_path: str
    checkpoint_dir: str
    decisions_dir: Optional[str] = None
    bank_path: Optional[str] = None
    #: Events processed per instance between checkpoints.
    checkpoint_every: int = 256
    #: Frames-in-flight granted to each instance connection.
    credit: int = 8
    window_instructions: float = 100_000.0
    anomaly_quantile: float = 0.9
    #: Classify likely fault causes of flagged requests (adds the
    #: attribution fields to decision records; off keeps legacy bytes).
    attribute: bool = False

    def __post_init__(self):
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.credit < 1:
            raise ValueError("credit must be >= 1")


class _InstanceState:
    """One connected instance's pipeline + durability bookkeeping."""

    __slots__ = ("pipeline", "events_since_checkpoint", "records_logged")

    def __init__(self, pipeline: OnlinePipeline):
        self.pipeline = pipeline
        self.events_since_checkpoint = 0
        self.records_logged = 0


class ShardWorker:
    """Asyncio server for one shard of the analysis pool."""

    def __init__(self, config: WorkerConfig):
        self.config = config
        self.instances: Dict[int, _InstanceState] = {}
        self.identifier = (
            load_bank(config.bank_path) if config.bank_path else None
        )
        self.frames_received = 0
        self.events_received = 0
        self.checkpoints_written = 0
        self.instances_restored = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopped = asyncio.Event()
        os.makedirs(config.checkpoint_dir, exist_ok=True)
        if config.decisions_dir:
            os.makedirs(config.decisions_dir, exist_ok=True)
        self._restore_from_checkpoints()

    # -- durability -----------------------------------------------------

    def _checkpoint_path(self, instance: int) -> str:
        return os.path.join(
            self.config.checkpoint_dir, f"instance-{instance}.json"
        )

    def _decisions_path(self, instance: int) -> str:
        assert self.config.decisions_dir is not None
        return os.path.join(
            self.config.decisions_dir, f"instance-{instance}.jsonl"
        )

    def _restore_from_checkpoints(self) -> None:
        """Load every instance checkpoint left by a previous incarnation."""
        for name in sorted(os.listdir(self.config.checkpoint_dir)):
            if not (name.startswith("instance-") and name.endswith(".json")):
                continue
            instance = int(name[len("instance-"):-len(".json")])
            try:
                pipeline = load_checkpoint(self._checkpoint_path(instance))
            except CheckpointError as error:
                # Atomic writes make this unreachable in normal operation;
                # if it happens anyway, failing loudly beats silently
                # recomputing different decisions.
                raise CheckpointError(
                    f"shard {self.config.shard}, instance {instance}: {error}"
                ) from None
            state = _InstanceState(pipeline)
            self.instances[instance] = state
            self.instances_restored += 1
            if self.config.decisions_dir:
                # Rewrite the decision log from the restored records, then
                # keep appending: the final file is byte-identical to an
                # uninterrupted worker's.
                with open(self._decisions_path(instance), "w") as fh:
                    for record in pipeline.records:
                        fh.write(_record_line(record))
                state.records_logged = len(pipeline.records)

    def _write_checkpoint(self, instance: int, state: _InstanceState) -> int:
        """Atomically persist one instance pipeline; returns covered seq."""
        path = self._checkpoint_path(instance)
        temp = f"{path}.tmp"
        with open(temp, "w") as fh:
            fh.write(checkpoint_to_json(state.pipeline))
            fh.write("\n")
        os.replace(temp, path)
        self.checkpoints_written += 1
        state.events_since_checkpoint = 0
        return state.pipeline.last_seq

    def _append_decisions(self, instance: int, state: _InstanceState) -> None:
        records = state.pipeline.records
        if not self.config.decisions_dir or state.records_logged >= len(records):
            return
        with open(self._decisions_path(instance), "a") as fh:
            for record in records[state.records_logged:]:
                fh.write(_record_line(record))
        state.records_logged = len(records)

    # -- pipelines ------------------------------------------------------

    def _state_for(self, instance: int) -> _InstanceState:
        state = self.instances.get(instance)
        if state is None:
            config = OnlineConfig(
                window_instructions=self.config.window_instructions,
                anomaly_quantile=self.config.anomaly_quantile,
                attribute=self.config.attribute,
            )
            state = _InstanceState(
                OnlinePipeline(config=config, identifier=self.identifier)
            )
            self.instances[instance] = state
        return state

    # -- connections ----------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        stream = FrameStream(reader, writer)
        try:
            hello = await server_handshake_for(self, stream)
            if hello["role"] == "instance":
                await self._serve_instance(stream, int(hello["instance"]))
            else:
                await self._serve_control(stream)
        except (ProtocolError, ConnectionError, asyncio.IncompleteReadError):
            # A dead or misbehaving peer must not take the worker down;
            # instances reconnect and replay their retained tail.
            pass
        finally:
            await stream.close()

    async def _serve_instance(self, stream: FrameStream, instance: int) -> None:
        state = self._state_for(instance)
        while True:
            payload = await stream.read()
            if payload is None:
                return
            if payload["type"] == "events":
                self.frames_received += 1
                events = decode_events(
                    payload, where=f"frame {stream.frames_read - 1}"
                )
                process = state.pipeline.process_event
                for event in events:
                    process(event)
                self.events_received += len(events)
                state.events_since_checkpoint += len(events)
                self._append_decisions(instance, state)
                if state.events_since_checkpoint >= self.config.checkpoint_every:
                    covered = self._write_checkpoint(instance, state)
                    await stream.write(
                        {"type": "checkpoint", "through_seq": covered}
                    )
                await stream.write(
                    {
                        "type": "credit",
                        "n": 1,
                        "ack_seq": state.pipeline.last_seq,
                    }
                )
            elif payload["type"] == "end":
                self._append_decisions(instance, state)
                covered = self._write_checkpoint(instance, state)
                await stream.write(
                    {"type": "checkpoint", "through_seq": covered}
                )
                await stream.write(
                    {
                        "type": "end_ack",
                        "events_seen": state.pipeline.events_seen,
                        "records": len(state.pipeline.records),
                        "last_seq": state.pipeline.last_seq,
                    }
                )
                return
            else:
                raise ProtocolError(
                    f"unexpected {payload['type']!r} on an instance stream"
                )

    async def _serve_control(self, stream: FrameStream) -> None:
        while True:
            payload = await stream.read()
            if payload is None:
                return
            if payload["type"] == "report":
                await stream.write(
                    {
                        "type": "report_ack",
                        "report": self.build_report(),
                        "stats": self.stats(),
                    }
                )
            elif payload["type"] == "shutdown":
                await stream.write({"type": "shutdown_ack"})
                self._stopped.set()
                return
            else:
                raise ProtocolError(
                    f"unexpected {payload['type']!r} on a control stream"
                )

    # -- reporting ------------------------------------------------------

    def build_report(self) -> dict:
        """Deterministic worker report (decisions only, no wall-clock).

        Service counters (frames, checkpoints, restarts) deliberately
        live in :meth:`stats`: a failed-over worker made the same
        *decisions* as an uninterrupted one but wrote more checkpoints,
        and the report is the byte-identity comparison surface.
        """
        instances = {}
        for instance in sorted(self.instances):
            pipeline = self.instances[instance].pipeline
            instances[str(instance)] = {
                "workload": pipeline.workload_name,
                "seed": pipeline.seed,
                "events_seen": pipeline.events_seen,
                "periods": pipeline.periods_seen,
                "windows": pipeline.windows_seen,
                "last_seq": pipeline.last_seq,
                "records": list(pipeline.records),
                "class_errors": {
                    label: {
                        "n": errors.n,
                        "abs_sum": errors.abs_sum,
                        "sq_sum": errors.sq_sum,
                        "weight": errors.weight,
                    }
                    for label, errors in sorted(
                        pipeline.class_errors.items()
                    )
                },
            }
        return {
            "format": WORKER_REPORT_FORMAT,
            "version": WORKER_REPORT_VERSION,
            "shard": self.config.shard,
            "instances": instances,
        }

    def stats(self) -> dict:
        return {
            "shard": self.config.shard,
            "frames_received": self.frames_received,
            "events_received": self.events_received,
            "checkpoints_written": self.checkpoints_written,
            "instances_restored": self.instances_restored,
            "instances": len(self.instances),
        }

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        if os.path.exists(self.config.socket_path):
            os.unlink(self.config.socket_path)
        self._server = await asyncio.start_unix_server(
            self._handle, path=self.config.socket_path
        )

    async def serve_until_stopped(self) -> None:
        await self.start()
        try:
            await self._stopped.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            if os.path.exists(self.config.socket_path):
                os.unlink(self.config.socket_path)

    def request_stop(self) -> None:
        self._stopped.set()


async def server_handshake_for(worker: ShardWorker, stream: FrameStream) -> dict:
    """Handshake with per-role ack fields (credit grant, resume cursor)."""
    payload = await stream.expect("hello")
    try:
        check_version(payload)
        role = payload.get("role")
        if role not in ("instance", "control"):
            raise ProtocolError(f"unknown connection role {role!r}")
        if role == "instance" and not isinstance(payload.get("instance"), int):
            raise ProtocolError("instance hello must carry an integer id")
    except ProtocolError as error:
        await stream.write({"type": "error", "message": str(error)})
        raise
    ack = {
        "type": "hello_ack",
        "format": PROTOCOL_FORMAT,
        "version": PROTOCOL_VERSION,
        "shard": worker.config.shard,
    }
    if payload["role"] == "instance":
        instance = int(payload["instance"])
        state = worker.instances.get(instance)
        ack["credit"] = worker.config.credit
        ack["resume_seq"] = state.pipeline.last_seq if state else -1
    await stream.write(ack)
    return payload


def _record_line(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


# -- subprocess entry point ---------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve-worker",
        description="One shard worker of the repro.serve analysis pool "
        "(normally launched by the supervisor, not by hand)",
    )
    parser.add_argument("--shard", required=True)
    parser.add_argument("--socket", required=True, metavar="PATH")
    parser.add_argument("--checkpoint-dir", required=True, metavar="DIR")
    parser.add_argument("--decisions-dir", default=None, metavar="DIR")
    parser.add_argument("--bank", default=None, metavar="PATH")
    parser.add_argument("--checkpoint-every", type=int, default=256)
    parser.add_argument("--credit", type=int, default=8)
    parser.add_argument("--window", type=float, default=100_000.0)
    parser.add_argument("--quantile", type=float, default=0.9)
    parser.add_argument("--attribute", action="store_true")
    return parser


async def _run(config: WorkerConfig) -> None:
    worker = ShardWorker(config)
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, worker.request_stop)
    await worker.serve_until_stopped()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = WorkerConfig(
        shard=args.shard,
        socket_path=args.socket,
        checkpoint_dir=args.checkpoint_dir,
        decisions_dir=args.decisions_dir,
        bank_path=args.bank,
        checkpoint_every=args.checkpoint_every,
        credit=args.credit,
        window_instructions=args.window,
        anomaly_quantile=args.quantile,
        attribute=args.attribute,
    )
    asyncio.run(_run(config))
    return 0


if __name__ == "__main__":
    sys.exit(main())
