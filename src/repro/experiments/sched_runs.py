"""Shared simulation runs for the scheduling experiments (Figures 12/13).

Both figures come from the same runs: TPCH and WeBWorK executed under the
original (round-robin, 100 ms quantum) scheduler and under contention-
easing scheduling (vaEWMA alpha = 0.6 prediction of L2 misses per
instruction, 80-percentile high-usage threshold, rescheduling attempts at
no more than 5 ms intervals, no cross-runqueue migration).  The paper
averages three 1000-request test runs; the reproduction scales the request
count and keeps the three-run averaging.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.stats import weighted_percentile
from repro.experiments.common import scaled, simulate
from repro.kernel.contention import ContentionEasingScheduler
from repro.kernel.scheduler import RoundRobinScheduler

APPS = ("tpch", "webwork")
_REQUESTS = {"tpch": 150, "webwork": 40}
N_RUNS = 3

#: The paper's threshold between high and low resource usage.
THRESHOLD_PERCENTILE = 80.0


def high_usage_threshold(app: str, scale: float, seed: int) -> float:
    """The 80-percentile of L2 misses per instruction for the workload."""
    profile = simulate(
        app, num_requests=scaled(_REQUESTS[app], scale, minimum=10), seed=seed
    )
    values = np.concatenate(
        [t.period_values("l2_miss_per_ins")[0] for t in profile.traces]
    )
    weights = np.concatenate(
        [t.period_values("l2_miss_per_ins")[1] for t in profile.traces]
    )
    return weighted_percentile(values, THRESHOLD_PERCENTILE, weights)


@lru_cache(maxsize=8)
def scheduling_runs(app: str, scale: float, seed: int) -> Dict[str, List]:
    """N_RUNS runs of each scheduler, with high-usage timeline accounting."""
    threshold = high_usage_threshold(app, scale, seed)
    n = scaled(_REQUESTS[app], scale, minimum=10)
    runs = {"original": [], "contention_easing": [], "threshold": threshold}
    for k in range(N_RUNS):
        runs["original"].append(
            simulate(
                app,
                num_requests=n,
                seed=seed + 10 * k,
                scheduler=RoundRobinScheduler(),
                high_usage_mpi_threshold=threshold,
            )
        )
        runs["contention_easing"].append(
            simulate(
                app,
                num_requests=n,
                seed=seed + 10 * k,
                scheduler=ContentionEasingScheduler(
                    high_usage_threshold=threshold
                ),
                high_usage_mpi_threshold=threshold,
            )
        )
    return runs


def mean_high_usage_fractions(results) -> Dict[str, float]:
    keys = (">=2", ">=3", "all")
    out = {}
    for key in keys:
        out[key] = float(np.mean([r.high_usage_fractions()[key] for r in results]))
    return out


def pooled_cpi_stats(results) -> Tuple[float, float, float, float]:
    """(mean, 99-pct, 99.9-pct, max) request CPI over the runs."""
    cpis = np.concatenate([r.request_cpis() for r in results])
    return (
        float(cpis.mean()),
        float(np.percentile(cpis, 99)),
        float(np.percentile(cpis, 99.9)),
        float(cpis.max()),
    )
