"""Table 2: system-call names as behavior transition signals (Apache).

During an online training process, every occurrence of a system call is
mapped to the CPI change over the 10 us execution windows before and after
the call; per name the running mean +- standard deviation is maintained.
Expectation (paper's Table 2 for the Apache web server):

    writev    increase  3.66 +- 2.27   (start of HTTP header writing)
    lseek     decrease  1.99 +- 2.42
    stat      decrease  1.39 +- 1.57
    poll      increase  1.22 +- 2.17
    shutdown  increase  0.82 +- 2.35
    read      increase  0.61 +- 2.30
    open      decrease  0.14 +- 1.38
    write     decrease  0.11 +- 2.06
"""

from __future__ import annotations

from repro.core.transitions import TransitionSignalTrainer
from repro.experiments.base import ExperimentResult
from repro.experiments.common import scaled, simulate

PAPER_DIRECTIONS = {
    "writev": "increase",
    "lseek": "decrease",
    "stat": "decrease",
    "poll": "increase",
    "shutdown": "increase",
    "read": "increase",
    "open": "decrease",
    "write": "decrease",
}


def train_webserver_signals(scale: float = 1.0, seed: int = 71):
    """Train CPI-change statistics over a web-server run."""
    sim = simulate("webserver", num_requests=scaled(400, scale), seed=seed)
    trainer = TransitionSignalTrainer(window_us=10.0, metric="cpi")
    for trace in sim.traces:
        trainer.train_on_trace(trace)
    return trainer


def run(scale: float = 1.0, seed: int = 71) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="table2",
        title="Syscall name -> CPI change over 10us windows (Apache web server)",
    )
    trainer = train_webserver_signals(scale, seed)
    agreements = []
    for signal in trainer.signals(min_occurrences=5):
        expected = PAPER_DIRECTIONS.get(signal.name)
        agree = expected == signal.direction if expected else None
        if agree is not None:
            agreements.append(agree)
        result.rows.append(
            {
                "syscall": signal.name,
                "direction": signal.direction,
                "mean_change": signal.mean_change,
                "std_change": signal.std_change,
                "occurrences": signal.occurrences,
                "paper_direction": expected or "-",
                "agrees": "" if agree is None else ("yes" if agree else "NO"),
            }
        )
    triggers = trainer.select_triggers(top=4)
    result.notes.append(
        "paper: writev signals the largest CPI increase (+3.66 +- 2.27, the "
        "start of HTTP header writing); selected sampling triggers "
        f"(top-4 by |mean change|): {triggers}"
    )
    if agreements:
        result.notes.append(
            f"direction agreement with the paper's Table 2: "
            f"{sum(agreements)}/{len(agreements)} syscall names"
        )
    return result
