"""Figure 13: request CPI under contention-easing CPU scheduling.

Average and worst-case (99 and 99.9-percentile) request CPI under the
original and the contention-easing scheduler.  Expectation: the
contention-easing scheduler reduces the worst-case request CPI by around
10% for both applications but does little for the average — its policy
targets the rare, most intensive resource contention, which is what
matters for service-level agreements on high-percentile performance.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.sched_runs import APPS, pooled_cpi_stats, scheduling_runs


def run(scale: float = 1.0, seed: int = 151) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig13",
        title="Request CPI (average / 99-pct / 99.9-pct) by scheduler",
    )
    summary = {}
    for app in APPS:
        runs = scheduling_runs(app, scale, seed)
        orig = pooled_cpi_stats(runs["original"])
        eased = pooled_cpi_stats(runs["contention_easing"])
        for label, o, e in zip(("average", "p99", "p99.9", "max"), orig, eased):
            result.rows.append(
                {
                    "app": app,
                    "statistic": label,
                    "original": o,
                    "contention_easing": e,
                    "change_pct": 100.0 * (e / o - 1.0),
                }
            )
        summary[app] = (eased[0] / orig[0] - 1.0, eased[2] / orig[2] - 1.0)
    result.notes.append(
        "paper: contention easing reduces worst-case request CPI by ~10% "
        "while doing little for the average; measured (avg, p99.9): "
        + ", ".join(
            f"{app}=({100 * a:+.1f}%, {100 * w:+.1f}%)"
            for app, (a, w) in summary.items()
        )
    )
    result.notes.append(
        "paper: mixed result is expected — the policy focuses on worst-case "
        "contention, prediction errors persist, and many variation stages "
        "are finer-grained than the scheduling quantum"
    )
    result.notes.append(
        "deviation: our worst-case improvement is smaller than the paper's "
        "~10% — the simulated contention model saturates (capped miss "
        "ratio, bounded bus inflation) where real front-side-bus "
        "saturation makes quad-high coincidences catastrophic, so there is "
        "less worst-case CPI for the scheduler to recover even though the "
        "co-execution reduction itself (Figure 12) fully reproduces"
    )
    return result
