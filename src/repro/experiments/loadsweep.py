"""Experiment ``loadsweep``: throughput vs tail latency under open load.

The paper's evaluation is closed-loop (a fixed thread pool replays
requests back-to-back), which can never show the queueing knee an open
system has: as offered load approaches capacity, queueing delay — and
with it p99 latency — diverges long before throughput stops growing.
This experiment sweeps an open-loop Poisson arrival process over a
ladder of offered loads for several dispatch policies and tabulates the
throughput-vs-percentile curve, including the overload regime where the
bounded admission queue starts shedding.

Every cell is an independent seeded simulation, so cells run in forked
workers under ``--jobs N``; rows are collected in ladder order, making
the rendered table byte-identical for any jobs count.
"""

from __future__ import annotations

import multiprocessing

from repro.experiments.base import ExperimentResult
from repro.hardware.platform import WOODCREST
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.traffic import PoissonArrivals, TrafficConfig, parse_dispatch
from repro.workloads.registry import make_workload

#: Offered arrival rates (requests/s).  WOODCREST runs the TPCC mix at
#: roughly 3k requests/s flat out on 4 cores, so the ladder spans from
#: comfortably underloaded to ~2.7x overloaded.
OFFERED_LOADS = (500, 1000, 2000, 4000, 8000)

#: Dispatch policies to contrast at each load point.
POLICIES = ("rr", "random", "jsq", "low")

#: Bounded admission queue: arrivals finding this many requests in
#: flight are shed, which keeps the overload rows finite and makes
#: backpressure visible as a shed count instead of an unbounded queue.
ADMISSION_LIMIT = 32

WORKLOAD = "tpcc"
SEED = 42


def _cell_config(rate_per_s: float, policy: str, requests: int) -> SimConfig:
    return SimConfig(
        machine=WOODCREST,
        num_requests=requests,
        concurrency=ADMISSION_LIMIT,
        seed=SEED,
        traffic=TrafficConfig(
            arrivals=PoissonArrivals(rate_per_s),
            dispatch=parse_dispatch(policy),
            admission_limit=ADMISSION_LIMIT,
        ),
    )


def _run_cell(args) -> dict:
    """One (offered load, policy) grid cell; top-level for fork pickling."""
    rate_per_s, policy, requests = args
    workload = make_workload(WORKLOAD)
    result = ServerSimulator(
        workload, _cell_config(rate_per_s, policy, requests)
    ).run()
    summary = result.latency.summary()
    latency = summary["latency_us"]
    queue = summary["queue_us"]
    offered = requests + summary["shed"]
    return {
        "offered_rps": int(rate_per_s),
        "dispatch": policy,
        "completed": summary["completed"],
        "shed": summary["shed"],
        "shed_frac": round(summary["shed"] / offered, 3) if offered else 0.0,
        "throughput_rps": round(summary["throughput_rps"], 1),
        "p50_us": round(latency["p50"], 1),
        "p95_us": round(latency["p95"], 1),
        "p99_us": round(latency["p99"], 1),
        "queue_p99_us": round(queue["p99"], 1),
    }


def run(scale: float = 1.0, jobs: int = 1) -> ExperimentResult:
    requests = max(40, int(round(200 * scale)))
    cells = [
        (float(rate), policy, requests)
        for rate in OFFERED_LOADS
        for policy in POLICIES
    ]
    parallel = (
        jobs > 1
        and len(cells) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    if parallel:
        from concurrent.futures import ProcessPoolExecutor

        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(cells)), mp_context=context
        ) as pool:
            # map() preserves submission order, so rows come out in
            # ladder order regardless of worker completion order.
            rows = list(pool.map(_run_cell, cells))
    else:
        rows = [_run_cell(cell) for cell in cells]

    knee = next(
        (row for row in rows if row["dispatch"] == "rr" and row["shed"] > 0),
        None,
    )
    notes = [
        f"{WORKLOAD} on {WOODCREST.num_cores} cores, open-loop Poisson arrivals, "
        f"{requests} requests/cell, admission queue bounded at "
        f"{ADMISSION_LIMIT} (arrivals beyond it are shed).",
        "Closed-loop replay cannot produce these curves: offered load is an "
        "independent axis only in an open system.",
    ]
    if knee is not None:
        notes.append(
            f"Backpressure knee (rr): first shedding at "
            f"{knee['offered_rps']} req/s offered."
        )
    return ExperimentResult(
        exp_id="loadsweep",
        title="Load sweep: throughput vs tail latency by dispatch policy",
        rows=rows,
        notes=notes,
    )
