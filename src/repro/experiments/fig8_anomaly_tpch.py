"""Figure 8: anomaly detection within a TPCH query group (Q20).

All requests processing the same SQL query share application-level
semantics and instruction streams, so the member farthest (by DTW with
asynchrony penalty on its CPI variation pattern) from the group centroid is
a suspected anomaly, with the centroid as its reference.  Paper
expectations: the anomaly exhibits higher CPI for much of its execution;
its CPI increases match its L2-misses-per-instruction increases (shared-L2
contention is the cause); and its L2 *reference* rate shows some increase
too — evidence of software-level contention (e.g. lock retries) adding
instructions and references.
"""

from __future__ import annotations

import numpy as np

from repro.core.anomaly import detect_by_centroid_distance
from repro.core.distances import unequal_length_penalty
from repro.core.kernels import PenaltyDtw
from repro.experiments.base import ExperimentResult
from repro.experiments.common import scaled
from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig

WINDOW = 1_000_000  # instructions


class _FocusMixWorkload:
    """Mixed TPC-H stream with an elevated share of one focus query.

    Anomalies arise from *heterogeneous* co-execution: a Q20 that happens
    to share the machine with heavy scans suffers, one that co-runs with
    light aggregates does not.  A pure same-query population would see
    uniform pressure and produce no slow outlier.
    """

    LIGHT = ("Q2", "Q11", "Q22")
    HEAVY = "Q9"

    def __init__(self, focus: str, focus_probability: float = 0.12,
                 heavy_probability: float = 0.03):
        from repro.workloads.tpch import TpchWorkload

        self._inner = TpchWorkload()
        self._focus = focus
        self._p_focus = focus_probability
        self._p_heavy = heavy_probability
        self.name = f"tpch_focus_{focus}"
        self.sampling_period_us = self._inner.sampling_period_us

    def sample_request(self, rng, request_id):
        u = rng.random()
        if u < self._p_focus:
            kind = self._focus
        elif u < self._p_focus + self._p_heavy:
            kind = self.HEAVY  # scan-heavy antagonist
        else:
            kind = self.LIGHT[int(rng.integers(len(self.LIGHT)))]
        return self._inner.build_query(rng, request_id, kind)


def collect_group(kind: str = "Q20", n: int = 120, seed: int = 7):
    """Run a mixed TPCH stream and return (run, indices of `kind` traces)."""
    config = SimConfig(
        sampling=SamplingPolicy.interrupt(1000.0),
        num_requests=n,
        concurrency=4,
        seed=seed,
    )
    sim = ServerSimulator(_FocusMixWorkload(kind), config).run()
    indices = [i for i, t in enumerate(sim.traces) if t.spec.kind == kind]
    return sim, indices


def run(scale: float = 1.0, seed: int = 7) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig8",
        title="TPCH anomaly vs group-centroid reference (Q20)",
    )
    sim, group = collect_group(n=scaled(120, scale, minimum=50), seed=seed)
    traces = sim.traces
    cpi_series = [t.series("cpi", WINDOW).values for t in traces]
    rng = np.random.default_rng(seed)
    penalty = unequal_length_penalty(
        np.concatenate([cpi_series[i] for i in group]), rng
    )

    cases = detect_by_centroid_distance(
        groups={"Q20": group},
        sequences=cpi_series,
        distance=PenaltyDtw(penalty),
        top_per_group=len(group) - 1,
    )
    # Centroid distance flags outliers on both sides (unlucky slow requests
    # and lucky fast ones).  The paper's analysis concerns worst-case
    # performance, so analyze the slowest member against the centroid
    # reference, and report where the detector ranked it.
    case = max(cases, key=lambda c: traces[c.anomaly_index].overall_cpi())
    rank = cases.index(case) + 1
    anomaly = traces[case.anomaly_index]
    reference = traces[case.reference_index]

    rows = []
    comparisons = {}
    for metric in ("cpi", "l2_miss_per_ins", "l2_refs_per_ins"):
        a = anomaly.series(metric, WINDOW).values
        r = reference.series(metric, WINDOW).values
        n = min(a.size, r.size)
        ratio = float(np.mean(a[:n] / np.maximum(r[:n], 1e-12)))
        frac_higher = float(np.mean(a[:n] > r[:n]))
        comparisons[metric] = (ratio, frac_higher)
        rows.append(
            {
                "metric": metric,
                "anomaly_mean": float(a.mean()),
                "reference_mean": float(r.mean()),
                "mean_ratio": ratio,
                "frac_windows_higher": frac_higher,
            }
        )
    result.rows = rows

    # Correlation between the CPI excess and the miss-per-ins excess.
    a_cpi = anomaly.series("cpi", WINDOW).values
    r_cpi = reference.series("cpi", WINDOW).values
    a_mpi = anomaly.series("l2_miss_per_ins", WINDOW).values
    r_mpi = reference.series("l2_miss_per_ins", WINDOW).values
    n = min(a_cpi.size, r_cpi.size, a_mpi.size, r_mpi.size)
    cpi_excess = a_cpi[:n] - r_cpi[:n]
    mpi_excess = a_mpi[:n] - r_mpi[:n]
    corr = float(np.corrcoef(cpi_excess, mpi_excess)[0, 1])

    result.notes.append(
        "paper: the anomalous request exhibits poor performance (higher CPI) "
        "for much of its execution; measured: anomaly CPI higher in "
        f"{comparisons['cpi'][1]:.0%} of windows (mean ratio "
        f"{comparisons['cpi'][0]:.2f})"
    )
    result.notes.append(
        "paper: anomalous CPI increases match the L2 misses-per-instruction "
        f"increases; measured excess correlation r={corr:.2f}"
    )
    result.notes.append(
        "paper: some increase of the L2 reference rate during anomalous "
        "TPCH executions (software-level contention / L1 coherence misses); "
        f"measured refs/ins mean ratio {comparisons['l2_refs_per_ins'][0]:.3f}"
    )
    result.notes.append(
        f"anomaly request id {anomaly.spec.request_id} (overall CPI "
        f"{anomaly.overall_cpi():.2f}) vs centroid reference id "
        f"{reference.spec.request_id} (overall CPI "
        f"{reference.overall_cpi():.2f}); the detector ranks the anomaly "
        f"{rank}/{len(cases)} by centroid distance "
        f"(DTW+penalty {case.score:.1f})"
    )
    return result
