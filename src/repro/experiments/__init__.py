"""Reproductions of every table and figure in the paper's evaluation.

Each module exposes ``run(scale=1.0, seed=...) -> ExperimentResult``; the
``runner`` CLI executes them by id (``fig1`` .. ``fig13``, ``table1``,
``table2``, ``sec32``).  ``scale`` shrinks request counts for quick runs.
"""

from repro.experiments.base import ExperimentResult, EXPERIMENTS, get_experiment

__all__ = ["EXPERIMENTS", "ExperimentResult", "get_experiment"]
