"""Figure 10: online request signature identification and CPU prediction.

A bank of representative request signatures — the variation pattern of L2
references per instruction, a metric reflecting inherent behavior rather
than dynamic L2 contention — is matched (L1 distance, the cheap online
choice) against the partial pattern of each new request at increasing
execution prefixes.  The matched signature predicts whether the request's
CPU usage will exceed the workload median.

Three approaches are compared: (1) the conventional transparent baseline —
predict from the average CPU usage of the 10 most recent completed
requests; (2) average-metric-value signatures (the paper's prior work);
(3) variation-pattern signatures.  Expectations: variation signatures cut
the prediction error by ~10 percentage points or more vs. average-value
signatures for web, TPCC, TPCH, RUBiS; for WeBWorK *both* signature forms
stay poor because all requests share identical processing semantics for
the first ~10 M instructions (out of several hundred million).
"""

from __future__ import annotations

import numpy as np

from repro.core.distances import unequal_length_penalty
from repro.core.signatures import RecentPastPredictor, SignatureBank, prediction_error_curve
from repro.experiments.base import ExperimentResult
from repro.experiments.common import all_apps, scaled, simulate

#: Progress unit per application (instructions), matching the paper's
#: per-application x-axes; prefixes run 1..10 units.
PROGRESS_UNIT = {
    "webserver": 10_000,
    "tpcc": 300_000,
    "tpch": 1_000_000,
    "rubis": 200_000,
    "webwork": 1_000_000,
}

#: Bank size (the paper collects 500 representative signatures; scaled).
_BANK = 120
_TEST = 120

METRIC = "l2_refs_per_ins"


def evaluate_app(app: str, scale: float, seed: int):
    """Error-vs-progress curves for the three approaches on one app."""
    bank_n = scaled(_BANK, scale, minimum=30)
    test_n = scaled(_TEST, scale, minimum=30)
    sim = simulate(app, num_requests=bank_n + test_n, seed=seed)
    traces = sim.traces
    unit = PROGRESS_UNIT[app]

    patterns = [t.series(METRIC, unit).values for t in traces]
    cpu_times = np.array([t.cpu_time_us() for t in traces])
    threshold = float(np.median(cpu_times))

    bank_idx = list(range(bank_n))
    test_idx = list(range(bank_n, len(traces)))
    rng = np.random.default_rng(seed)
    penalty = unequal_length_penalty(
        np.concatenate([patterns[i] for i in bank_idx]), rng
    )

    banks = {
        "variation": SignatureBank(penalty=penalty, method="variation"),
        "average": SignatureBank(penalty=penalty, method="average"),
    }
    for i in bank_idx:
        for bank in banks.values():
            bank.add(patterns[i], cpu_times[i])

    prefix_lengths = list(range(1, 11))
    curves = {}
    for name, bank in banks.items():
        curves[name] = prediction_error_curve(
            bank,
            [patterns[i] for i in test_idx],
            [cpu_times[i] for i in test_idx],
            threshold,
            prefix_lengths,
        )

    # Conventional baseline: average CPU usage of 10 recent past requests
    # (evaluated in completion order; constant across progress points).
    recent = RecentPastPredictor(window=10)
    wrong = 0
    for i in test_idx:
        predicted = recent.predict_cpu_above(threshold)
        actual = cpu_times[i] > threshold
        if predicted is None:
            predicted = False
        wrong += predicted != actual
        recent.observe_completion(cpu_times[i])
    curves["past_requests"] = np.full(len(prefix_lengths), wrong / len(test_idx))
    return curves, prefix_lengths


def run(scale: float = 1.0, seed: int = 131) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig10",
        title="Online signature identification: CPU-usage prediction error",
    )
    summary = {}
    for app in all_apps():
        curves, prefixes = evaluate_app(app, scale, seed)
        for name, curve in curves.items():
            row = {"app": app, "approach": name}
            for k, err in zip(prefixes, curve):
                row[f"p{k}"] = 100.0 * float(err)
            result.rows.append(row)
        summary[app] = (
            float(np.mean(curves["average"])) - float(np.mean(curves["variation"]))
        )
    result.notes.append(
        "columns p1..p10 are prediction error (%) after 1..10 progress "
        "units of observed execution (units per app as in the paper)"
    )
    result.notes.append(
        "paper: variation signatures reduce error by ~10 points or more vs "
        "average-value signatures for web/TPCC/TPCH/RUBiS; measured "
        "mean-error reductions: "
        + ", ".join(f"{app}={100 * gain:.0f}pp" for app, gain in summary.items())
    )
    result.notes.append(
        "paper: for WeBWorK both signature forms are poor — requests follow "
        "identical semantics for the first 10M instructions, so early "
        "signatures cannot identify them"
    )
    return result
