"""Figure 6: two inherently similar TPCC requests drifting apart.

The paper illustrates why plain L1 differencing over-estimates: two
"new order" transactions with the same inherent behavior drift apart
slightly (shifted CPI peaks) after about 800,000 instructions — e.g. from
lock contention or imperfect request-context maintenance.  Dynamic time
warping absorbs the shift through asynchronous steps; the L1 distance
charges for every shifted peak.

The reproduction constructs the pair explicitly: one new-order transaction,
and the same transaction with a small lock-wait stall inserted at ~0.8 M
instructions (shifting every later peak), then compares the differencing
measures.  As a control, a genuinely different request (another transaction
type) shows that DTW with the asynchrony penalty still separates genuinely
different requests while forgiving the drift pair.
"""

from __future__ import annotations

import numpy as np

from repro.core.distances import l1_distance
from repro.core.dtw import dtw_distance
from repro.experiments.base import ExperimentResult
from repro.hardware.cpu import PhaseBehavior
from repro.workloads.base import Phase, RequestSpec, single_stage
from repro.workloads.tpcc import TpccWorkload

#: Fixed-instruction window for the CPI sequences (matches TPCC's 50 k).
WINDOW = 50_000


def build_drift_pair(seed: int = 91):
    """A new-order request and its drifted twin (stall at ~0.8 M ins)."""
    workload = TpccWorkload()
    base = workload.build_transaction(np.random.default_rng(seed), 0, "new_order")

    phases = list(base.phases())
    drifted_phases = []
    consumed = 0
    inserted = False
    for p in phases:
        drifted_phases.append(p)
        consumed += p.instructions
        if not inserted and consumed >= 800_000:
            drifted_phases.append(
                Phase(
                    name="lock_wait_stall",
                    instructions=70_000,
                    behavior=PhaseBehavior(
                        base_cpi=2.6,  # spinning/futex retry path
                        l2_refs_per_ins=0.004,
                        l2_miss_ratio=0.10,
                        cache_footprint=0.05,
                    ),
                )
            )
            inserted = True
    drifted = RequestSpec(
        request_id=1,
        app="tpcc",
        kind="new_order",
        stages=single_stage("mysql", drifted_phases),
    )
    control = workload.build_transaction(np.random.default_rng(seed + 7), 2, "payment")
    return base, drifted, control


def run(scale: float = 1.0, seed: int = 91) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig6",
        title="Two similar TPCC requests drifting apart after ~0.8M instructions",
    )
    base, drifted, control = build_drift_pair(seed)
    series = {
        "base": base.solo_series(WINDOW),
        "drifted": drifted.solo_series(WINDOW),
        "control(payment)": control.solo_series(WINDOW),
    }
    penalty = float(
        np.percentile(
            np.abs(np.subtract.outer(series["base"], series["base"])).ravel(), 99
        )
    )
    for other in ("drifted", "control(payment)"):
        x, y = series["base"], series[other]
        result.rows.append(
            {
                "pair": f"base vs {other}",
                "len_x": x.size,
                "len_y": y.size,
                "l1": l1_distance(x, y, penalty=penalty),
                "dtw": dtw_distance(x, y),
                "dtw+penalty": dtw_distance(x, y, asynchrony_penalty=penalty),
            }
        )
    drift_row, control_row = result.rows
    result.notes.append(
        "paper: the executions drift apart slightly (shifted peaks) after "
        "~800,000 instructions; L1 over-estimates the drift pair's "
        "difference while DTW absorbs the shift — measured L1 "
        f"{drift_row['l1']:.1f} vs DTW+penalty {drift_row['dtw+penalty']:.1f}"
    )
    result.notes.append(
        "control: a genuinely different transaction stays far under every "
        "measure that sees variation patterns — DTW+penalty "
        f"{control_row['dtw+penalty']:.1f} (drift pair "
        f"{drift_row['dtw+penalty']:.1f})"
    )
    return result
