"""Experiment result container and registry."""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.report import format_table


@dataclass
class ExperimentResult:
    """Output of one table/figure reproduction."""

    exp_id: str
    title: str
    rows: List[Dict] = field(default_factory=list)
    #: Free-form commentary: paper expectation vs. measured outcome.
    notes: List[str] = field(default_factory=list)
    #: Extra named row groups for multi-panel figures.
    panels: Dict[str, List[Dict]] = field(default_factory=dict)
    #: Wall-clock stage profile attached by the runner under ``--profile``:
    #: stage name -> {"seconds": ..., "calls": ...}.  Deliberately NOT part
    #: of :meth:`render` — rendered output must stay a pure function of the
    #: experiment's results so determinism tests can compare serial and
    #: parallel runs textually.
    stage_seconds: Dict[str, Dict] = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"== {self.exp_id}: {self.title} =="]
        if self.rows:
            parts.append(format_table(self.rows))
        for name, rows in self.panels.items():
            parts.append("")
            parts.append(format_table(rows, title=f"-- {name} --"))
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)


#: exp id -> (module, paper artifact description).
EXPERIMENTS = {
    "fig1": ("repro.experiments.fig1_cpi_distributions", "Figure 1: request CPI distributions, 1-core vs 4-core"),
    "fig2": ("repro.experiments.fig2_intra_request", "Figure 2: intra-request behavior variation examples"),
    "table1": ("repro.experiments.table1_sampling_cost", "Table 1: per-sample cost and observer effect"),
    "fig3": ("repro.experiments.fig3_captured_variation", "Figure 3: captured inter/intra-request variations"),
    "fig4": ("repro.experiments.fig4_syscall_distances", "Figure 4: next-syscall distance CDFs"),
    "fig5": ("repro.experiments.fig5_sampling_overhead", "Figure 5: syscall-triggered vs interrupt sampling overhead"),
    "table2": ("repro.experiments.table2_transition_signals", "Table 2: syscall-name to CPI-change mappings"),
    "sec32": ("repro.experiments.sec32_transition_sampling", "Section 3.2: transition-signal sampling CoV gain"),
    "fig6": ("repro.experiments.fig6_drift_example", "Figure 6: similar TPCC requests drifting apart"),
    "fig7": ("repro.experiments.fig7_classification", "Figure 7: request classification quality by measure"),
    "fig8": ("repro.experiments.fig8_anomaly_tpch", "Figure 8: TPCH anomaly vs reference"),
    "fig9": ("repro.experiments.fig9_anomaly_webwork", "Figure 9: WeBWorK multi-metric anomaly pair"),
    "fig10": ("repro.experiments.fig10_online_identification", "Figure 10: online signature identification accuracy"),
    "fig11": ("repro.experiments.fig11_prediction", "Figure 11: online behavior prediction RMS errors"),
    "fig12": ("repro.experiments.fig12_contention_reduction", "Figure 12: high-contention co-execution time"),
    "fig13": ("repro.experiments.fig13_cpi_scheduling", "Figure 13: request CPI under contention-easing scheduling"),
    "stream": ("repro.experiments.stream_detection", "Streaming detection: online pipeline vs injected faults"),
    "sweep": ("repro.experiments.sweep_grid", "Scenario sweep: cross-scenario overhead and detection grid"),
    "attribution": ("repro.experiments.attribution_grid", "Cause attribution: accuracy across the fault taxonomy"),
    "loadsweep": ("repro.experiments.loadsweep", "Load sweep: throughput vs tail latency by dispatch policy"),
}


def get_experiment(exp_id: str):
    """Import and return the experiment module for ``exp_id``."""
    try:
        module_name, _ = EXPERIMENTS[exp_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return importlib.import_module(module_name)
