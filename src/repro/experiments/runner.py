"""Command-line runner for the paper's tables and figures.

Usage::

    repro-experiments --list
    repro-experiments fig1 fig3 --scale 0.5
    repro-experiments all --scale 1.0 --out EXPERIMENTS_RUN.md
    repro-experiments all --jobs 4 --cache   # parallel ids + distance cache
    repro-experiments fig7 --profile --metrics-out fig7-metrics.json
"""

from __future__ import annotations

import argparse
import inspect
import json
import multiprocessing
import os
import sys
import tempfile
import time

from repro.experiments.base import EXPERIMENTS, get_experiment
from repro.obs.profiling import StageProfiler, activated


def positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid float value: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text!r}")
    return value


def positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text!r}")
    return value


def _atomic_write(path: str, text: str) -> None:
    """Replace ``path`` with ``text`` atomically (temp file + rename)."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except OSError:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def normalize_experiment_ids(requested) -> list:
    """Expand ``all`` in place and deduplicate, preserving first-seen order.

    ``all`` may be mixed with explicit ids (``repro-experiments all fig1``)
    and ids may repeat; each experiment runs exactly once.  Unknown ids
    raise ``ValueError``.
    """
    expanded = []
    for exp_id in requested:
        if exp_id == "all":
            expanded.extend(EXPERIMENTS)
        else:
            expanded.append(exp_id)
    unknown = sorted({e for e in expanded if e not in EXPERIMENTS})
    if unknown:
        raise ValueError(f"unknown experiment ids: {unknown}")
    seen = set()
    ordered = []
    for exp_id in expanded:
        if exp_id not in seen:
            seen.add(exp_id)
            ordered.append(exp_id)
    return ordered


def _call_run(module, scale: float, jobs: int, cache_dir, profile: bool = False):
    """Invoke ``module.run``, passing jobs/cache_dir only where supported.

    With ``profile`` a fresh :class:`StageProfiler` captures the pipeline
    stages (generate → simulate → distance → cluster) and its snapshot is
    attached to the result as ``stage_seconds``.
    """
    kwargs = {"scale": scale}
    parameters = inspect.signature(module.run).parameters
    if "jobs" in parameters:
        kwargs["jobs"] = jobs
    if "cache_dir" in parameters and cache_dir is not None:
        kwargs["cache_dir"] = cache_dir
    if not profile:
        return module.run(**kwargs)
    profiler = StageProfiler()
    with activated(profiler):
        result = module.run(**kwargs)
    if hasattr(result, "stage_seconds"):
        result.stage_seconds = profiler.snapshot()
    return result


def _run_one(exp_id: str, scale: float, jobs: int, cache_dir, profile: bool):
    """Worker entry point for experiment-level parallelism."""
    module = get_experiment(exp_id)
    start = time.perf_counter()
    result = _call_run(module, scale, jobs, cache_dir, profile)
    return result, time.perf_counter() - start


def run_experiments(exp_ids, scale: float, jobs: int = 1, cache_dir=None,
                    profile: bool = False):
    """Run experiments by id, yielding (exp_id, result, seconds).

    With ``jobs > 1`` and several ids, independent experiments run in
    worker processes (one experiment each, so inner distance work stays
    serial); a single experiment instead receives the whole ``jobs``
    budget for its pairwise-distance matrices.  Yield order always
    follows ``exp_ids``.  ``profile`` attaches per-stage wall-clock
    timings to each result (captured inside the worker for parallel runs,
    so timings stay per-experiment).
    """
    exp_ids = list(exp_ids)
    parallel = (
        jobs > 1
        and len(exp_ids) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    if not parallel:
        for exp_id in exp_ids:
            module = get_experiment(exp_id)
            start = time.perf_counter()
            result = _call_run(module, scale, jobs, cache_dir, profile)
            yield exp_id, result, time.perf_counter() - start
        return

    from concurrent.futures import ProcessPoolExecutor

    context = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(exp_ids)), mp_context=context
    ) as pool:
        futures = [
            pool.submit(_run_one, exp_id, scale, 1, cache_dir, profile)
            for exp_id in exp_ids
        ]
        for exp_id, future in zip(exp_ids, futures):
            result, elapsed = future.result()
            yield exp_id, result, elapsed


def _format_profile(exp_id: str, stage_seconds: dict) -> str:
    """Render a ``--profile`` stage table for one experiment."""
    from repro.analysis.report import format_table

    rows = [
        {
            "stage": name,
            "calls": entry["calls"],
            "seconds": round(entry["seconds"], 3),
        }
        for name, entry in stage_seconds.items()
    ]
    return format_table(rows, title=f"-- {exp_id} stage profile --")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce tables/figures from 'Request Behavior "
        "Variations' (ASPLOS 2010)",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (fig1..fig13, table1, table2, sec32, stream, "
        "sweep) or 'all' (mixable with explicit ids; duplicates run once)",
    )
    parser.add_argument(
        "--scale",
        type=positive_float,
        default=1.0,
        help="request-count scale factor (> 0; smaller = faster, default 1.0)",
    )
    parser.add_argument(
        "--jobs",
        type=positive_int,
        default=1,
        help="worker processes: parallelizes independent experiment ids, or "
        "the pairwise-distance matrices of a single experiment (default 1)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="persist pairwise-distance results under results/.cache/ so "
        "reruns skip recomputation",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--out",
        help="also write rendered output to this file (atomic replace; "
        "concurrent runs cannot interleave)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="time each pipeline stage (generate/simulate/distance/cluster) "
        "per experiment and print a profile table",
    )
    parser.add_argument(
        "--metrics-out",
        help="write per-experiment timing/profile metrics to this JSON file",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for exp_id, (_, description) in EXPERIMENTS.items():
            print(f"{exp_id:8s}  {description}")
        return 0

    try:
        exp_ids = normalize_experiment_ids(args.experiments)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2

    cache_dir = "results/.cache" if args.cache else None
    profile = args.profile or bool(args.metrics_out)
    outputs = []
    metrics = {}
    for exp_id, result, elapsed in run_experiments(
        exp_ids, args.scale, jobs=args.jobs, cache_dir=cache_dir, profile=profile
    ):
        text = result.render()
        print(text)
        if args.profile and result.stage_seconds:
            print(_format_profile(exp_id, result.stage_seconds))
        print(f"[{exp_id} finished in {elapsed:.1f}s]\n")
        outputs.append(text + f"\n[{elapsed:.1f}s]\n")
        metrics[exp_id] = {
            "seconds": elapsed,
            "stages": result.stage_seconds,
        }
    if args.out:
        # Write-to-temp-then-rename: appending would interleave two runs
        # sharing a report file, and a crash mid-write would leave a torn
        # one.  The rename publishes the whole report or nothing.
        _atomic_write(
            args.out, "\n\n".join(o.rstrip("\n") for o in outputs) + "\n"
        )
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            json.dump(metrics, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
