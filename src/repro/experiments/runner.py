"""Command-line runner for the paper's tables and figures.

Usage::

    repro-experiments --list
    repro-experiments fig1 fig3 --scale 0.5
    repro-experiments all --scale 1.0 --out EXPERIMENTS_RUN.md
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.base import EXPERIMENTS, get_experiment


def run_experiments(exp_ids, scale: float):
    """Run experiments by id, yielding (exp_id, result, seconds)."""
    for exp_id in exp_ids:
        module = get_experiment(exp_id)
        start = time.perf_counter()
        result = module.run(scale=scale)
        yield exp_id, result, time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce tables/figures from 'Request Behavior "
        "Variations' (ASPLOS 2010)",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (fig1..fig13, table1, table2, sec32) or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="request-count scale factor (smaller = faster, default 1.0)",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--out", help="also append rendered output to this file")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for exp_id, (_, description) in EXPERIMENTS.items():
            print(f"{exp_id:8s}  {description}")
        return 0

    exp_ids = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [e for e in exp_ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        return 2

    outputs = []
    for exp_id, result, elapsed in run_experiments(exp_ids, args.scale):
        text = result.render()
        print(text)
        print(f"[{exp_id} finished in {elapsed:.1f}s]\n")
        outputs.append(text + f"\n[{elapsed:.1f}s]\n")
    if args.out:
        with open(args.out, "a") as fh:
            fh.write("\n\n".join(outputs) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
