"""Figure 9: WeBWorK anomaly found by multi-metric differencing.

The search targets adverse effects of dynamic concurrent executions on the
L2-cache-sharing multicore: request pairs that look *alike* on L2
references per instruction (the same reference stream to the shared
resource — both process WeBWorK problem 954) yet *differ* on CPI.  The
paper uses DTW with the asynchrony penalty as the differencing measure.
Expectations: the anomaly's CPI is higher in certain regions of execution;
those regions line up with its L2 misses-per-instruction excess; and —
unlike the TPCH case — the reference-rate patterns stay very similar.
"""

from __future__ import annotations

import numpy as np

from repro.core.anomaly import detect_multi_metric_pairs
from repro.core.distances import unequal_length_penalty
from repro.core.kernels import PenaltyDtw
from repro.experiments.base import ExperimentResult
from repro.experiments.common import scaled
from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.workloads.registry import FixedKindWorkload

WINDOW = 2_000_000  # instructions
PROBLEM = 954


def collect_group(n: int, seed: int):
    """A population of requests all rendering WeBWorK problem 954."""
    workload = FixedKindWorkload("webwork", f"problem_{PROBLEM}")
    config = SimConfig(
        sampling=SamplingPolicy.interrupt(1000.0),
        num_requests=n,
        concurrency=8,
        seed=seed,
    )
    return ServerSimulator(workload, config).run()


def run(scale: float = 1.0, seed: int = 121) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig9",
        title=f"WeBWorK multi-metric anomaly pair (problem {PROBLEM})",
    )
    sim = collect_group(n=scaled(14, scale, minimum=8), seed=seed)
    traces = sim.traces
    refs_series = [t.series("l2_refs_per_ins", WINDOW).values for t in traces]
    cpi_series = [t.series("cpi", WINDOW).values for t in traces]
    rng = np.random.default_rng(seed)
    refs_penalty = unequal_length_penalty(np.concatenate(refs_series), rng)
    cpi_penalty = unequal_length_penalty(np.concatenate(cpi_series), rng)

    cases = detect_multi_metric_pairs(
        refs_series,
        cpi_series,
        ref_distance=PenaltyDtw(refs_penalty),
        cpi_distance=PenaltyDtw(cpi_penalty),
        ref_similarity_quantile=25.0,
        top_pairs=1,
    )
    case = cases[0]
    anomaly = traces[case.anomaly_index]
    reference = traces[case.reference_index]

    for metric in ("cpi", "l2_miss_per_ins", "l2_refs_per_ins"):
        a = anomaly.series(metric, WINDOW).values
        r = reference.series(metric, WINDOW).values
        n = min(a.size, r.size)
        result.rows.append(
            {
                "metric": metric,
                "anomaly_mean": float(a.mean()),
                "reference_mean": float(r.mean()),
                "mean_ratio": float(np.mean(a[:n] / np.maximum(r[:n], 1e-12))),
                "frac_windows_higher": float(np.mean(a[:n] > r[:n])),
            }
        )

    a_cpi = anomaly.series("cpi", WINDOW).values
    r_cpi = reference.series("cpi", WINDOW).values
    a_mpi = anomaly.series("l2_miss_per_ins", WINDOW).values
    r_mpi = reference.series("l2_miss_per_ins", WINDOW).values
    n = min(a_cpi.size, r_cpi.size, a_mpi.size, r_mpi.size)
    corr = float(
        np.corrcoef(a_cpi[:n] - r_cpi[:n], a_mpi[:n] - r_mpi[:n])[0, 1]
    )
    refs_row = result.rows[2]
    result.notes.append(
        "paper: the anomalous request exhibits higher CPI in certain regions "
        "of execution, and those CPI increases match the L2 misses-per-"
        f"instruction pattern; measured excess correlation r={corr:.2f}"
    )
    result.notes.append(
        "paper: for WeBWorK (unlike TPCH) the anomaly-reference pair's L2 "
        "reference patterns stay very similar; measured refs/ins mean ratio "
        f"{refs_row['mean_ratio']:.3f}"
    )
    result.notes.append(
        f"anomaly request id {anomaly.spec.request_id}, reference id "
        f"{reference.spec.request_id} (both problem {PROBLEM})"
    )
    return result
