"""Table 1: per-sample cost and additional counter events.

The measurement follows the paper's methodology: run a microbenchmark with
and without counter sampling and attribute the difference in raw (un-
compensated) counters to the samples taken.  Two microbenchmarks bracket
the cache-pollution range — Mbench-Spin (no data access) and Mbench-Data
(streams 16 MB, replacing the entire cache state) — and two sampling
contexts are measured: in-kernel (system-call-triggered) and APIC
interrupt.  Expectation (paper's Table 1 at 3 GHz):

    in-kernel:  ~0.42 us, ~1270 cycles, ~649 instructions, L2 refs N/M->13
    interrupt:  ~0.76 us, ~2276 cycles, ~724 instructions, L2 refs N/M->12
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.kernel.sampling import SamplingMode, SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.workloads.registry import make_workload


def _totals(sim_result):
    trace = sim_result.traces[0]
    return {
        "cycles": float(trace.raw_cycles.sum()),
        "instructions": float(trace.raw_instructions.sum()),
        "l2_refs": float(trace.raw_l2_refs.sum()),
        "l2_misses": float(trace.raw_l2_misses.sum()),
    }


def _run(bench: str, policy: SamplingPolicy, seed: int):
    config = SimConfig(
        sampling=policy,
        num_requests=1,
        concurrency=1,
        seed=seed,
        compensate=False,
    )
    return ServerSimulator(make_workload(bench), config).run()


def measure(bench: str, context: str, seed: int = 31) -> dict:
    """Per-sample cost of one sampling context on one microbenchmark."""
    baseline_policy = SamplingPolicy(mode=SamplingMode.CONTEXT_SWITCH_ONLY)
    if context == "in_kernel":
        policy = SamplingPolicy.syscall_triggered(
            t_syscall_min_us=100.0, t_backup_int_us=1_000_000.0
        )
    elif context == "interrupt":
        policy = SamplingPolicy.interrupt(100.0)
    else:
        raise ValueError(f"unknown context {context!r}")

    baseline = _run(bench, baseline_policy, seed)
    sampled = _run(bench, policy, seed)
    stats = sampled.sampler_stats
    n = stats.in_kernel_samples if context == "in_kernel" else stats.interrupt_samples
    if n == 0:
        raise RuntimeError(f"no {context} samples taken on {bench}")
    base_totals = _totals(baseline)
    samp_totals = _totals(sampled)
    per_sample = {
        key: (samp_totals[key] - base_totals[key]) / n for key in base_totals
    }
    per_sample["samples"] = n
    per_sample["time_us"] = per_sample["cycles"] / 3000.0
    return per_sample


def run(scale: float = 1.0, seed: int = 31) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="table1",
        title="Per-sample average cost and additional event counts",
    )
    for context in ("in_kernel", "interrupt"):
        for bench in ("mbench_spin", "mbench_data"):
            m = measure(bench, context, seed=seed)
            result.rows.append(
                {
                    "context": context,
                    "workload": bench,
                    "samples": m["samples"],
                    "time_us": m["time_us"],
                    "cycles": m["cycles"],
                    "instructions": m["instructions"],
                    "l2_refs": m["l2_refs"],
                    "l2_misses": m["l2_misses"],
                }
            )
    result.notes.append(
        "paper: in-kernel sampling ~0.42-0.46 us / ~1270-1374 cycles / 649 "
        "instructions; interrupt sampling ~0.76-0.80 us / ~2276-2388 cycles "
        "/ 724-734 instructions; L2 refs only measurable under cache "
        "pollution (Mbench-Data): ~13 (in-kernel) and ~12 (interrupt)"
    )
    result.notes.append(
        "interrupt sampling costs >1000 extra cycles over in-kernel due to "
        "the user/kernel domain switch — the motivation for system-call-"
        "triggered sampling (Section 3.2)"
    )
    return result
