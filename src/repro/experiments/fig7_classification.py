"""Figure 7: request classification quality under different differencing
measures.

k-medoids (k = 10) clusters each application's requests under five
measures: Levenshtein distance of syscall sequences (Magpie-style software
events), difference of average request CPIs (the prior-work signature),
L1 distance of CPI variation sequences, plain dynamic time warping, and
DTW with the asynchrony penalty.  Quality = cluster members' divergence
from their centroid, on two request properties: CPU execution time and
peak (90-percentile) CPI.

Paper expectations:
* DTW **with** the asynchrony penalty achieves the best quality everywhere;
  without the penalty, no-cost time shifting under-estimates differences
  and classification can be very poor;
* Levenshtein (software events only) is relatively poor — it misses dynamic
  multicore execution effects;
* average-CPI does well on the peak-CPI property (strong correlation) but
  poorly on CPU time;
* L1 is slightly worse than DTW+penalty (over-estimation on drifted pairs)
  but far cheaper — the pragmatic online choice.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.analysis.stats import weighted_percentile
from repro.core.clustering import distance_matrix, divergence_from_centroid, k_medoids
from repro.core.distengine import DistanceCache, DistanceEngine, default_cache_path
from repro.core.distances import (
    average_metric_distance,
    l1_distance,
    levenshtein_distance,
    unequal_length_penalty,
)
from repro.core.kernels import PenaltyDtw
from repro.experiments.base import ExperimentResult
from repro.experiments.common import all_apps, scaled, simulate
from repro.workloads.registry import make_workload

#: Requests clustered per application (paper-scale statistics would use
#: more; the k-medoids outcome stabilizes well below that).
_REQUESTS = {"webserver": 120, "tpcc": 120, "tpch": 68, "rubis": 100, "webwork": 32}

#: Cap on syscall-sequence length for the Levenshtein baseline (long TPCH
#: sequences are subsampled; edit distance is quadratic).
_MAX_EVENTS = 300

MEASURES = ("levenshtein", "avg_cpi", "l1", "dtw", "dtw_penalty")


def _subsample(seq: List[str], limit: int) -> List[str]:
    if len(seq) <= limit:
        return seq
    idx = np.linspace(0, len(seq) - 1, limit).astype(int)
    return [seq[i] for i in idx]


def classification_quality(
    app: str,
    scale: float,
    seed: int,
    k: int = 10,
    engine: DistanceEngine = None,
) -> Dict:
    """Divergence-from-centroid per measure for one application.

    All five O(n^2) distance matrices run through ``engine`` (serial by
    default); the cache keys embed the measure name and its penalty so a
    cached rerun is hit-for-hit safe.
    """
    sim = simulate(app, num_requests=scaled(_REQUESTS[app], scale, minimum=24), seed=seed)
    traces = sim.traces
    window = make_workload(app).window_instructions
    rng = np.random.default_rng(seed)

    cpi_series = [t.series("cpi", window).values for t in traces]
    syscall_seqs = [
        _subsample(t.spec.syscall_sequence(rng), _MAX_EVENTS) for t in traces
    ]
    avg_cpis = [np.array([t.overall_cpi()]) for t in traces]
    penalty = unequal_length_penalty(np.concatenate(cpi_series), rng)

    cpu_times = np.array([t.cpu_time_us() for t in traces])
    peak_cpis = np.array(
        [
            weighted_percentile(t.period_values("cpi")[0], 90, t.period_values("cpi")[1])
            for t in traces
        ]
    )

    distance_fns = {
        "levenshtein": (syscall_seqs, levenshtein_distance, "levenshtein"),
        "avg_cpi": (avg_cpis, average_metric_distance, "avg-metric"),
        "l1": (
            cpi_series,
            lambda a, b: l1_distance(a, b, penalty=penalty),
            f"l1:p={penalty!r}",
        ),
        # PenaltyDtw measures route through the batched one-vs-many
        # kernel inside the engine (bit-identical to per-pair DP calls).
        "dtw": (cpi_series, PenaltyDtw(0.0), "dtw:p=0"),
        "dtw_penalty": (
            cpi_series,
            PenaltyDtw(penalty),
            f"dtw:p={penalty!r}",
        ),
    }

    quality = {}
    for measure, (items, fn, key) in distance_fns.items():
        matrix = distance_matrix(items, fn, engine=engine, distance_key=key)
        clusters = k_medoids(matrix, k=min(k, len(items)), rng=np.random.default_rng(seed))
        quality[measure] = {
            "cpu_time": divergence_from_centroid(cpu_times, clusters),
            "peak_cpi": divergence_from_centroid(peak_cpis, clusters),
        }
    return quality


def run(
    scale: float = 1.0,
    seed: int = 101,
    jobs: int = 1,
    cache_dir: str = None,
) -> ExperimentResult:
    """``jobs`` parallelizes the pairwise-distance matrices; ``cache_dir``
    persists them (e.g. ``results/.cache``) so reruns and k-sweeps skip
    recomputation.  Results are bit-identical either way."""
    cache = (
        DistanceCache(path=default_cache_path(cache_dir))
        if cache_dir is not None
        else None
    )
    engine = DistanceEngine(jobs=jobs, cache=cache)
    result = ExperimentResult(
        exp_id="fig7",
        title="Classification quality (divergence from centroid, lower = better)",
    )
    for prop in ("cpu_time", "peak_cpi"):
        result.panels[f"property: {prop}"] = []
    wins = 0
    total = 0
    for app in all_apps():
        quality = classification_quality(app, scale, seed, engine=engine)
        for prop in ("cpu_time", "peak_cpi"):
            row = {"app": app}
            for measure in MEASURES:
                row[measure] = 100.0 * quality[measure][prop]
            result.panels[f"property: {prop}"].append(row)
            best = min(MEASURES, key=lambda m: row[m])
            total += 1
            if row["dtw_penalty"] <= min(row["l1"], row["levenshtein"]) + 1e-9:
                wins += 1
    result.notes.append(
        "values are divergence-from-centroid percentages (lower is better); "
        f"dtw_penalty beats both L1 and Levenshtein in {wins}/{total} panels"
    )
    result.notes.append(
        "paper: DTW+penalty best overall; plain DTW can be very poor "
        "(no-cost time shifting); Levenshtein poor (misses dynamic "
        "multicore effects); avg-CPI good on peak CPI but poor on CPU time"
    )
    return result
