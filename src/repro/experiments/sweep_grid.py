"""Experiment ``sweep``: a cross-scenario grid through the sweep engine.

Where every other experiment id reproduces one table or figure, this one
demonstrates the grid engine itself: a small
workloads x sampling x faults spec expanded, executed through
:func:`repro.sweep.run_sweep` (honoring the runner's ``--jobs`` /
``--cache``), and aggregated into the cross-scenario overhead and
detection tables a hand-assembled evaluation would rebuild ad hoc.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.experiments.base import ExperimentResult
from repro.sweep.cache import ScenarioCache
from repro.sweep.executor import SweepOptions, run_sweep
from repro.sweep.manifest import SweepManifest
from repro.sweep.report import build_report
from repro.sweep.spec import SweepSpec


def run(scale: float = 1.0, jobs: int = 1, cache_dir: Optional[str] = None):
    requests = max(4, int(round(10 * scale)))
    spec = SweepSpec(
        name="experiment-sweep",
        workloads=("webserver", "tpcc"),
        sampling=("interrupt:100", "syscall:80,400"),
        seeds=(0,),
        faults=("none", "lock_stall:0.25"),
        requests=requests,
        concurrency=4,
        online=True,
        train=0,
        # Fault injection is demonstrated on the transactional workload
        # only; the static web mix keeps its clean baseline.
        exclude=({"workload": "webserver", "faults": "lock_stall:0.25"},),
    )
    cache = (
        ScenarioCache(os.path.join(cache_dir, "scenarios.json"))
        if cache_dir is not None
        else None
    )
    manifest = SweepManifest.plan(spec)
    run_sweep(manifest, options=SweepOptions(jobs=jobs, cache=cache))
    report = build_report(manifest)
    counts = manifest.counts()
    return ExperimentResult(
        exp_id="sweep",
        title="Scenario sweep: cross-scenario overhead and detection grid",
        rows=report.overhead_rows,
        panels={
            "fault detection by workload x fault mix": report.detection_rows,
            "scenario status": report.scenario_rows,
        },
        notes=[
            f"{counts['planned']} scenarios planned, {counts['done']} done, "
            f"{counts['quarantined']} quarantined "
            f"({len(spec.expand())} grid points after include/exclude rules).",
            "Same engine as the repro-sweep CLI: resumable manifests, "
            "per-scenario quarantine, byte-identical under --jobs N.",
        ],
    )
