"""Experiment ``attribution``: cause attribution scored across the fault
taxonomy.

One grid axis per fault kind: every taxonomy kind is injected into the
transactional workload at the same rate, the online pipeline runs with
cause attribution enabled, and the sweep report's attribution table
shows per-mix accuracy against the injected ground truth — the
end-to-end number the streaming detector's attribution stage is judged
by.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.experiments.base import ExperimentResult
from repro.faults.taxonomy import FAULT_TAXONOMY
from repro.sweep.cache import ScenarioCache
from repro.sweep.executor import SweepOptions, run_sweep
from repro.sweep.manifest import SweepManifest
from repro.sweep.report import build_report
from repro.sweep.spec import SweepSpec

#: Injection rate shared by every fault axis value.
RATE = 0.3


def run(scale: float = 1.0, jobs: int = 1, cache_dir: Optional[str] = None):
    requests = max(12, int(round(24 * scale)))
    spec = SweepSpec(
        name="experiment-attribution",
        workloads=("tpcc",),
        sampling=("interrupt:100",),
        seeds=(3,),
        faults=tuple(f"{kind}:{RATE:g}" for kind in FAULT_TAXONOMY),
        requests=requests,
        concurrency=4,
        online=True,
        train=10,
        attribute=True,
    )
    cache = (
        ScenarioCache(os.path.join(cache_dir, "scenarios.json"))
        if cache_dir is not None
        else None
    )
    manifest = SweepManifest.plan(spec)
    run_sweep(manifest, options=SweepOptions(jobs=jobs, cache=cache))
    report = build_report(manifest)
    counts = manifest.counts()
    scored = [row for row in report.attribution_rows if row["detected"] > 0]
    return ExperimentResult(
        exp_id="attribution",
        title="Cause attribution accuracy across the fault taxonomy",
        rows=report.attribution_rows,
        panels={
            "fault detection by workload x fault mix": report.detection_rows,
        },
        notes=[
            f"{len(FAULT_TAXONOMY)} fault kinds injected at rate {RATE:g}; "
            f"{counts['done']}/{counts['planned']} scenarios done, "
            f"{len(scored)} mixes with attributable detections.",
            "Attribution classifies each flagged request's counter "
            "signature against per-window-index baselines; accuracy is "
            "correct-cause / detected per mix (see docs/faults.md).",
        ],
    )
