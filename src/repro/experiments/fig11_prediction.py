"""Figure 11: online prediction of L2 cache misses per instruction.

Sub-request-granularity scheduling needs online estimates of the coming
period's behavior.  Predictors compared on TPCH and WeBWorK (the two
long-request applications for which sub-request scheduling makes sense):
request-average, last-value, and the variable-aging EWMA filter (vaEWMA,
Equation 5) over gains alpha = 0.1..0.9 with a 1 ms unit observation
length.  Accuracy is the length-weighted RMS error (Equation 7).

Expectation: vaEWMA with a mid-range gain beats both baselines — it adapts
to behavior changes while damping short-term fluctuations; the paper
settles on alpha = 0.6 for its scheduling case study.
"""

from __future__ import annotations

import numpy as np

from repro.core.prediction import LastValue, RunningAverage, VaEwma, evaluate_predictor
from repro.experiments.base import ExperimentResult
from repro.experiments.common import scaled, simulate

APPS = ("tpch", "webwork")
_REQUESTS = {"tpch": 50, "webwork": 24}
ALPHAS = tuple(round(0.1 * k, 1) for k in range(1, 10))

#: Unit observation length: 1 ms at 3 GHz, in cycles.
UNIT_CYCLES = 3_000_000.0


def _per_request_samples(trace):
    """Per-period (miss/ins value, period length in cycles) samples."""
    keep = trace.instructions > 0
    values = trace.l2_misses[keep] / trace.instructions[keep]
    lengths = np.maximum(trace.cycles[keep], 1.0)
    return values, lengths


def evaluate_app(app: str, scale: float, seed: int):
    sim = simulate(app, num_requests=scaled(_REQUESTS[app], scale, minimum=10), seed=seed)
    predictors = {
        "request_average": lambda: RunningAverage(),
        "last_value": lambda: LastValue(),
    }
    for alpha in ALPHAS:
        predictors[f"vaEWMA a={alpha}"] = (
            lambda a=alpha: VaEwma(alpha=a, unit_length=UNIT_CYCLES)
        )

    errors = {}
    for name, factory in predictors.items():
        sq_sum = 0.0
        w_sum = 0.0
        for trace in sim.traces:
            values, lengths = _per_request_samples(trace)
            if values.size < 3:
                continue
            rmse = evaluate_predictor(factory(), values, lengths)
            weight = float(lengths[1:].sum())
            sq_sum += rmse**2 * weight
            w_sum += weight
        errors[name] = float(np.sqrt(sq_sum / w_sum))
    return errors


def run(scale: float = 1.0, seed: int = 141) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig11",
        title="RMS error of online L2 misses-per-instruction prediction",
    )
    conclusions = {}
    for app in APPS:
        errors = evaluate_app(app, scale, seed)
        for name, rmse in errors.items():
            result.rows.append({"app": app, "predictor": name, "rmse": rmse})
        best_alpha = min(
            (name for name in errors if name.startswith("vaEWMA")),
            key=lambda n: errors[n],
        )
        conclusions[app] = (
            best_alpha,
            errors[best_alpha],
            errors["request_average"],
            errors["last_value"],
        )
    result.notes.append(
        "paper: vaEWMA with an appropriate gain beats the request-average "
        "and last-value predictors on both applications; measured best: "
        + "; ".join(
            f"{app}: {best} rmse={rmse:.2e} (avg {avg:.2e}, last {last:.2e})"
            for app, (best, rmse, avg, last) in conclusions.items()
        )
    )
    result.notes.append(
        "paper: the scheduling case study adopts alpha = 0.6 (application-"
        "specific calibration of the gain may be necessary)"
    )
    return result
