"""Streaming detection: the online pipeline scored against injected faults.

The paper detects anomalies post-hoc and argues about their causes; the
:mod:`repro.online` subsystem makes the detection *streaming* — incremental
group centroids plus an adaptive P-square quantile threshold over live
per-request sample events.  This experiment validates that detector the
way later work on request-flow anomaly detection does: inject known faults
(lock stalls, cache thrashing, uniform slowdowns) into a TPCC stream at a
known rate and score precision, recall, and median time-to-detect (in
retired instructions) against the ground truth, alongside the online
identification commit earliness and vaEWMA prediction error that share the
same event stream.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.common import scaled
from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.obs.trace import TraceCollector
from repro.online.pipeline import (
    SUBSCRIBED_KINDS,
    OnlinePipeline,
    train_identifier,
)
from repro.online.report import build_report
from repro.workloads.faults import FAULT_KINDS
from repro.workloads.registry import make_faulted_workload, make_workload

APP = "tpcc"
FAULT_RATE = 0.2


def stream_run(fault_kind: str, num_requests: int, seed: int, identifier):
    """One live streaming run over a fault-injected workload."""
    workload = make_faulted_workload(APP, f"{fault_kind}:{FAULT_RATE}")
    collector = TraceCollector(capacity=0, kinds=SUBSCRIBED_KINDS)
    pipeline = OnlinePipeline(identifier=identifier)
    collector.subscribe(pipeline.process_event)
    config = SimConfig(
        sampling=SamplingPolicy.interrupt(workload.sampling_period_us),
        num_requests=num_requests,
        concurrency=8,
        seed=seed,
        collector=collector,
    )
    ServerSimulator(workload, config).run()
    return build_report(pipeline)


def run(scale: float = 1.0, seed: int = 11) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="stream",
        title="streaming fault detection scored against injected ground truth",
    )
    num_requests = scaled(80, scale, minimum=30)
    identifier = train_identifier(
        make_workload(APP),
        num_requests=scaled(24, scale, minimum=12),
        seed=seed + 10_000,
    )
    reports = {}
    for fault_kind in FAULT_KINDS:
        report = stream_run(fault_kind, num_requests, seed, identifier)
        reports[fault_kind] = report
        s = report.summary
        result.rows.append(
            {
                "fault": fault_kind,
                "requests": s["population"],
                "injected": s["injected"],
                "flagged": s["flagged"],
                "precision": s["precision"],
                "recall": s["recall"],
                "median_ttd_ins": s["median_time_to_detect_instructions"],
                "commit_accuracy": s["label_accuracy"],
                "predict_rms": s["prediction_rms_error"],
            }
        )

    recalls = [r.summary["recall"] for r in reports.values()]
    result.notes.append(
        "detector: incremental per-kind centroids + adaptive P-square "
        "quantile threshold over the live event stream (bounded memory, "
        "no post-hoc distance matrix)"
    )
    result.notes.append(
        f"faults injected at rate {FAULT_RATE} into {APP}; mean recall "
        f"across kinds {sum(recalls) / len(recalls):.2f}; time-to-detect "
        "counts retired instructions from request admission to flag"
    )
    result.notes.append(
        "identification commits after a stable signature-match streak; "
        "commit_accuracy is the fraction of committed labels matching the "
        "request's true kind"
    )
    return result
