"""Figure 1: per-request CPI distributions, 1-core serial vs 4-core.

Paper expectation: under serial execution each application's requests show
tightly clustered CPI (TPCC multi-modal over its transaction types); under
4-core concurrent execution the distributions spread and the 90-percentile
CPI degrades in an application-dependent way — roughly doubling for TPCH
while WeBWorK is essentially unaffected.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_series_plot
from repro.analysis.stats import histogram
from repro.experiments.base import ExperimentResult
from repro.experiments.common import all_apps, standard_run

#: Histogram bin widths per application, as printed on the paper's plots.
BIN_WIDTHS = {
    "webserver": 0.1,
    "tpcc": 0.1,
    "tpch": 0.2,
    "rubis": 0.1,
    "webwork": 0.02,
}


def run(scale: float = 1.0, seed: int = 11) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig1",
        title="Per-request CPI distributions: 1-core serial vs 4-core concurrent",
    )
    for app in all_apps():
        serial = standard_run(app, scale, seed, cores=1)
        multi = standard_run(app, scale, seed + 1, cores=4)
        cpi_serial = serial.request_cpis()
        cpi_multi = multi.request_cpis()
        p90_serial = float(np.percentile(cpi_serial, 90))
        p90_multi = float(np.percentile(cpi_multi, 90))
        width = BIN_WIDTHS[app]
        lo = np.floor(min(cpi_serial.min(), cpi_multi.min()) / width) * width
        hi = np.ceil(max(cpi_serial.max(), cpi_multi.max()) / width) * width
        hist_serial = histogram(cpi_serial, lo, hi, width)
        hist_multi = histogram(cpi_multi, lo, hi, width)
        result.rows.append(
            {
                "app": app,
                "n_serial": cpi_serial.size,
                "n_4core": cpi_multi.size,
                "mean_1core": float(cpi_serial.mean()),
                "mean_4core": float(cpi_multi.mean()),
                "p90_1core": p90_serial,
                "p90_4core": p90_multi,
                "p90_ratio": p90_multi / p90_serial,
                "std_1core": float(cpi_serial.std()),
                "std_4core": float(cpi_multi.std()),
                "peak_prob_1core": float(hist_serial.probabilities.max()),
                "peak_prob_4core": float(hist_multi.probabilities.max()),
            }
        )
        result.notes.append(
            "\n"
            + format_series_plot(
                {
                    "1-core": hist_serial.probabilities,
                    "4-core": hist_multi.probabilities,
                },
                width=56,
                height=8,
                title=f"{app}: request CPI probability ({width}-wide bins)",
                x_labels=[f"{lo:.1f}", f"{hi:.1f}"],
            )
        )
    ratios = {row["app"]: row["p90_ratio"] for row in result.rows}
    result.notes.append(
        "paper: multicore obfuscation is application-dependent — it roughly "
        "doubles TPCH's 90-percentile CPI while WeBWorK sees no significant "
        f"impact; measured ratios: tpch={ratios['tpch']:.2f}, "
        f"webwork={ratios['webwork']:.2f}"
    )
    result.notes.append(
        "paper: serial distributions are tightly clustered; 4-core "
        "distributions are much less clustered (see std columns)"
    )
    return result
