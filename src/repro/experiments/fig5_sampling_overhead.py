"""Figure 5: overhead of syscall-triggered vs interrupt-based sampling.

For a fair comparison the syscall-triggered sampler's timings
(Tsyscall_min, Tbackup_int) are tuned per application until it produces a
similar overall sampling frequency as the interrupt-based sampler; the
overhead of each run is then the sample count times the measured
per-sample cost (Mbench-Spin row of Table 1).  Expectation: the
syscall-triggered approach saves 18-38% of sampling overhead, because
in-kernel samples avoid the interrupt's extra user/kernel domain switch
while apps with long syscall-free stretches (TPCC, WeBWorK) still need
some backup interrupts.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.common import (
    DEFAULT_REQUESTS,
    SAMPLING_PERIOD_US,
    all_apps,
    scaled,
    simulate,
)
from repro.kernel.sampling import SamplingPolicy


def _added_samples(stats) -> int:
    return stats.in_kernel_samples + stats.interrupt_samples


def matched_syscall_run(app, num_requests, seed, period_us, target_samples,
                        backup_factor=2.0, tolerance=0.08, max_tuning_rounds=8):
    """Tune Tsyscall_min (with Tbackup_int = backup_factor x Tsyscall_min)
    until the syscall-triggered sampler matches the target sample count.

    Coupling the backup delay to the syscall threshold means applications
    with long syscall-free stretches (TPCC, WeBWorK) automatically fall
    back to backup interrupts for a larger share of their samples — which
    is exactly what erodes part of the in-kernel cost advantage.
    """
    t_min = 0.7 * period_us
    run = None
    for _ in range(max_tuning_rounds):
        policy = SamplingPolicy.syscall_triggered(
            t_syscall_min_us=t_min, t_backup_int_us=backup_factor * t_min
        )
        run = simulate(
            app, num_requests=num_requests, seed=seed, sampling=policy
        )
        produced = _added_samples(run.sampler_stats)
        ratio = produced / max(target_samples, 1)
        if abs(ratio - 1.0) <= tolerance:
            break
        t_min = max(0.01 * period_us, t_min * ratio)
    return run, t_min


def run(scale: float = 1.0, seed: int = 61) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig5",
        title="Sampling overhead: syscall-triggered vs interrupt-based",
    )
    savings = {}
    for app in all_apps():
        n = scaled(DEFAULT_REQUESTS[app], scale)
        period = SAMPLING_PERIOD_US[app]
        interrupt_run = simulate(
            app,
            num_requests=n,
            seed=seed,
            sampling=SamplingPolicy.interrupt(period),
        )
        cost_model = interrupt_run.config.cost_model
        int_samples = _added_samples(interrupt_run.sampler_stats)
        int_overhead = interrupt_run.sampler_stats.overhead_cycles(cost_model)
        busy = float(interrupt_run.busy_cycles_per_core.sum())

        sys_run, t_min = matched_syscall_run(
            app, n, seed, period, target_samples=int_samples
        )
        sys_samples = _added_samples(sys_run.sampler_stats)
        sys_overhead = sys_run.sampler_stats.overhead_cycles(cost_model)

        normalized = sys_overhead / int_overhead
        savings[app] = 1.0 - normalized
        result.rows.append(
            {
                "app": app,
                "period_us": period,
                "interrupt_samples": int_samples,
                "syscall_samples": sys_samples,
                "backup_interrupts": sys_run.sampler_stats.interrupt_samples,
                "t_syscall_min_us": t_min,
                "base_cost_pct": 100.0 * int_overhead / busy,
                "normalized_overhead": normalized,
                "savings_pct": 100.0 * savings[app],
            }
        )
    result.notes.append(
        "paper: system call-triggered sampling saves 18-38% overhead across "
        "the five applications; measured savings: "
        + ", ".join(f"{app}={100 * savings[app]:.0f}%" for app in savings)
    )
    result.notes.append(
        "paper: base interrupt-sampling costs range from 0.02% to 5.81% of "
        "CPU consumption depending on request granularity and sampling "
        "frequency (web server highest at once per 10us)"
    )
    result.notes.append(
        "deviation: syscall-saturated applications (TPCH, RUBiS) reach the "
        "theoretical 44% ceiling (in-kernel/interrupt cost ratio 1270/2276) "
        "because our tuned Tbackup_int leaves them virtually no backup "
        "interrupts; the paper's unpublished timer settings evidently "
        "retained a larger backup share, capping its savings at 38%"
    )
    return result
