"""Figure 12: reduction of high-usage co-execution under contention easing.

For each scheduler, the proportion of execution time during which at least
2, at least 3, and all 4 cores simultaneously execute at high resource
usage (L2 misses per instruction above the 80-percentile threshold).
Expectation: contention-easing scheduling reduces high-usage co-execution,
most visibly the rare most-intensive periods (all four cores high —
reduced by around 25% for both applications); it cannot eliminate them
(online prediction errors, and variation stages finer than the scheduling
quantum, especially in WeBWorK).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.sched_runs import (
    APPS,
    mean_high_usage_fractions,
    scheduling_runs,
)


def run(scale: float = 1.0, seed: int = 151) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig12",
        title="Proportion of time with >=2 / >=3 / 4 cores at high resource usage",
    )
    reductions = {}
    for app in APPS:
        runs = scheduling_runs(app, scale, seed)
        original = mean_high_usage_fractions(runs["original"])
        eased = mean_high_usage_fractions(runs["contention_easing"])
        for level in (">=2", ">=3", "all"):
            result.rows.append(
                {
                    "app": app,
                    "cores_high": level if level != "all" else "4 cores",
                    "original_pct": 100.0 * original[level],
                    "contention_easing_pct": 100.0 * eased[level],
                    "reduction_pct": 100.0 * (1.0 - eased[level] / original[level])
                    if original[level] > 0
                    else 0.0,
                }
            )
        reductions[app] = (
            1.0 - eased["all"] / original["all"] if original["all"] > 0 else 0.0
        )
        result.notes.append(
            f"{app}: high-usage threshold (80-pct L2 miss/ins) = "
            f"{runs['threshold']:.5f}"
        )
    result.notes.append(
        "paper: the most intensive contention periods (all four cores at "
        "high usage) are reduced by around 25% for both applications; "
        "measured: "
        + ", ".join(f"{app}={100 * r:.0f}%" for app, r in reductions.items())
    )
    return result
