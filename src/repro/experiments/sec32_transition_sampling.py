"""Section 3.2 result: transition-signal sampling captures more variation.

The enhanced sampler restricts syscall triggers to the subset of names most
correlated with behavior transitions (for Apache: writev, lseek, stat,
poll).  For a fair comparison both samplers are tuned to the same overall
sampling frequency, each on its natural knob: the plain syscall-triggered
sampler on Tsyscall_min (with Tbackup_int = 4x, as in the Figure 5 setup),
and the enhanced sampler on Tbackup_int (its triggers are sparse and
already well below the budget, so density comes from the backup timer).

Expectation: at matched frequency the transition-aligned samples partition
execution at behavior boundaries, so the coefficient of variation of the
produced samples increases (the paper measures 0.60 -> 0.65).
"""

from __future__ import annotations

from repro.core.variation import captured_variation
from repro.experiments.base import ExperimentResult
from repro.experiments.common import scaled, simulate
from repro.kernel.sampling import SamplingPolicy

#: The paper's selected trigger subset for the Apache web server.
WEB_TRIGGERS = ("writev", "lseek", "stat", "poll")

#: Sampling budget: one sample per this many microseconds of execution.
TARGET_PERIOD_US = 20.0


def _added(stats) -> int:
    return stats.in_kernel_samples + stats.interrupt_samples


def _tune(make_policy, initial: float, target: int, runner, rounds=8, tol=0.10):
    """Multiplicatively adjust one timing knob until counts match."""
    knob = initial
    run = None
    for _ in range(rounds):
        run = runner(make_policy(knob))
        ratio = _added(run.sampler_stats) / max(target, 1)
        if abs(ratio - 1.0) <= tol:
            break
        # Longer delays -> fewer samples, so scale the knob *up* when
        # oversampling.
        knob = max(0.5, min(500.0, knob * ratio))
    return run, knob


def run(scale: float = 1.0, seed: int = 81) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="sec32",
        title="Captured CPI variation: syscall-triggered vs transition-signal",
    )
    n = scaled(400, scale)

    def runner(policy):
        return simulate("webserver", num_requests=n, seed=seed, sampling=policy)

    # Estimate the sample budget from total busy time.
    probe = runner(
        SamplingPolicy.syscall_triggered(
            t_syscall_min_us=TARGET_PERIOD_US, t_backup_int_us=4 * TARGET_PERIOD_US
        )
    )
    busy_us = float(probe.busy_cycles_per_core.sum()) / 3000.0
    target = int(busy_us / TARGET_PERIOD_US)

    plain, t_min_plain = _tune(
        lambda t: SamplingPolicy.syscall_triggered(
            t_syscall_min_us=t, t_backup_int_us=4 * t
        ),
        initial=TARGET_PERIOD_US,
        target=target,
        runner=runner,
    )
    enhanced, t_backup_enh = _tune(
        lambda t: SamplingPolicy.transition_signal(
            t_syscall_min_us=2.0, t_backup_int_us=max(3.0, t), triggers=WEB_TRIGGERS
        ),
        initial=TARGET_PERIOD_US,
        target=target,
        runner=runner,
    )

    cov_plain = captured_variation(plain.traces, "cpi")
    cov_enhanced = captured_variation(enhanced.traces, "cpi")
    result.rows.append(
        {
            "approach": "syscall-triggered (all names)",
            "samples": _added(plain.sampler_stats),
            "tuned_knob_us": t_min_plain,
            "cpi_cov": cov_plain,
        }
    )
    result.rows.append(
        {
            "approach": f"transition-signal {WEB_TRIGGERS}",
            "samples": _added(enhanced.sampler_stats),
            "tuned_knob_us": t_backup_enh,
            "cpi_cov": cov_enhanced,
        }
    )
    result.notes.append(
        "paper: restricting triggers to behavior-transition syscalls raises "
        "the captured CoV from 0.60 to 0.65 at matched sampling frequency; "
        f"measured {cov_plain:.3f} -> {cov_enhanced:.3f} "
        f"({(cov_enhanced / cov_plain - 1) * 100:+.0f}%)"
    )
    return result
