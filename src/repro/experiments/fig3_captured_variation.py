"""Figure 3: captured request behavior variations on three metrics.

For each application, the coefficient of variation (Equation 1) of CPU
cycles per instruction, L2 references per instruction, and L2 misses per
reference is computed twice: treating every request as one uniform period
(inter-request only), and using every sampled execution period (adding
intra-request fluctuation).  Expectation: considering intra-request
fluctuation yields much stronger variation for every application *except*
TPCH, whose queries behave uniformly over long data sequences.
"""

from __future__ import annotations

from repro.core.variation import captured_variation, inter_request_variation
from repro.experiments.base import ExperimentResult
from repro.experiments.common import all_apps, standard_run

METRICS = ("cpi", "l2_refs_per_ins", "l2_miss_ratio")


def run(scale: float = 1.0, seed: int = 41) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig3",
        title="Captured variations: inter-request vs with intra-request (CoV)",
    )
    gains = {}
    for app in all_apps():
        sim = standard_run(app, scale, seed, cores=4)
        row = {"app": app}
        for metric in METRICS:
            inter = inter_request_variation(sim.traces, metric)
            intra = captured_variation(sim.traces, metric)
            row[f"{metric}:inter"] = inter
            row[f"{metric}:with_intra"] = intra
        gains[app] = row["cpi:with_intra"] / max(row["cpi:inter"], 1e-9)
        result.rows.append(row)
    result.notes.append(
        "paper: intra-request fluctuations add much stronger variation for "
        "all applications except TPCH (uniform per-query behavior); measured "
        "CPI CoV gain factors: "
        + ", ".join(f"{app}={gains[app]:.2f}x" for app in gains)
    )
    return result
