"""Figure 2: behavior variation within single request executions.

One representative request per application (the paper shows a web request,
a TPCC "new order" transaction, TPCH Q20, RUBiS SearchItemsByCategory, and
a WeBWorK request) with CPI, L2 references per instruction, and L2 miss
ratio over the course of execution.  Expectation: significant metric
variation over request progress, request lengths spanning ~0.14 M
instructions (web) to ~600 M (WeBWorK), and no long stable phases — the
WeBWorK tail fluctuates at fine grain.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.experiments.common import scaled, simulate
from repro.workloads.registry import make_workload

#: Representative request kind per application, as in the paper's figure.
REPRESENTATIVES = {
    "webserver": "class1",
    "tpcc": "new_order",
    "tpch": "Q20",
    "rubis": "SearchItemsByCategory",
    "webwork": None,  # any problem
}

_REQUESTS = {"webserver": 60, "tpcc": 60, "tpch": 24, "rubis": 40, "webwork": 10}


def _pick_trace(result, kind):
    for trace in result.traces:
        if kind is None or trace.spec.kind == kind:
            return trace
    return result.traces[0]


def run(scale: float = 1.0, seed: int = 21) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig2",
        title="Intra-request behavior variations (one representative request per app)",
    )
    for app, kind in REPRESENTATIVES.items():
        sim = simulate(app, num_requests=scaled(_REQUESTS[app], scale), seed=seed)
        trace = _pick_trace(sim, kind)
        window = make_workload(app).window_instructions
        for metric in ("cpi", "l2_refs_per_ins", "l2_miss_ratio"):
            series = trace.series(metric, window).values
            result.rows.append(
                {
                    "app": app,
                    "request": trace.spec.kind,
                    "metric": metric,
                    "length_Mins": trace.total_instructions / 1e6,
                    "windows": int(series.size),
                    "min": float(series.min()),
                    "mean": float(series.mean()),
                    "max": float(series.max()),
                    "max/mean": float(series.max() / series.mean())
                    if series.mean() > 0
                    else float("nan"),
                }
            )
    lengths = {
        row["app"]: row["length_Mins"]
        for row in result.rows
        if row["metric"] == "cpi"
    }
    result.notes.append(
        "paper: request lengths differ by orders of magnitude — a web request "
        "executes a few hundred thousand instructions while WeBWorK reaches "
        f"~600M; measured web={lengths['webserver']:.2f}M, "
        f"webwork={lengths['webwork']:.0f}M"
    )
    result.notes.append(
        "paper: metrics vary significantly over the course of execution "
        "(max/mean well above 1 within a single request)"
    )
    return result
