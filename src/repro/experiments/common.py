"""Shared helpers for experiment modules."""

from __future__ import annotations

import math
from typing import Optional

from repro.hardware.platform import WOODCREST, serial_machine
from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig, SimResult
from repro.workloads.registry import SERVER_APPS, make_workload

#: Default 4-core request counts per application, sized so each experiment
#: finishes in seconds while providing stable statistics.  The paper's runs
#: are larger (e.g. 1000-request scheduling runs); pass ``scale > 1`` to
#: approach them.
DEFAULT_REQUESTS = {
    "webserver": 400,
    "tpcc": 400,
    "tpch": 80,
    "rubis": 160,
    "webwork": 40,
}

#: Figure 3 / Section 3.1 sampling frequencies per application.
SAMPLING_PERIOD_US = {
    "webserver": 10.0,
    "tpcc": 100.0,
    "tpch": 1000.0,
    "rubis": 100.0,
    "webwork": 1000.0,
}


def scaled(count: int, scale: float, minimum: int = 4) -> int:
    return max(minimum, int(math.ceil(count * scale)))


def simulate(
    app: str,
    num_requests: int,
    seed: int,
    cores: int = 4,
    concurrency: Optional[int] = None,
    sampling: Optional[SamplingPolicy] = None,
    **config_overrides,
) -> SimResult:
    """Run one workload with per-application defaults."""
    workload = make_workload(app)
    if sampling is None:
        sampling = SamplingPolicy.interrupt(
            SAMPLING_PERIOD_US.get(app, workload.sampling_period_us)
        )
    if cores == 4:
        machine = WOODCREST
        concurrency = concurrency if concurrency is not None else 8
    elif cores == 1:
        machine = serial_machine()
        concurrency = concurrency if concurrency is not None else 1
    else:
        raise ValueError("cores must be 1 or 4")
    config = SimConfig(
        machine=machine,
        sampling=sampling,
        num_requests=num_requests,
        concurrency=concurrency,
        seed=seed,
        **config_overrides,
    )
    return ServerSimulator(workload, config).run()


def standard_run(app: str, scale: float, seed: int, cores: int = 4) -> SimResult:
    """The canonical characterization run for one application."""
    base = DEFAULT_REQUESTS[app]
    count = scaled(base if cores == 4 else base // 3, scale)
    return simulate(app, num_requests=count, seed=seed, cores=cores)


def all_apps():
    return SERVER_APPS
