"""Figure 4: cumulative distribution of next-system-call distances.

From an arbitrary instant of request execution, how far away (in time and
in instructions) is the next system call?  Frequent syscalls make cheap
in-kernel sampling viable.  Expectations from the paper: the probability
of a syscall within 16 us is ~97% (web server), ~83% (TPCH), ~72% (RUBiS);
TPCC and WeBWorK have long syscall-free stretches but still reach ~82% and
~81% within 1 ms.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_series_plot
from repro.experiments.base import ExperimentResult
from repro.experiments.common import all_apps, scaled
from repro.kernel.syscalls import next_syscall_distance_cdf
from repro.workloads.registry import make_workload

TIME_GRID_US = np.array([4, 16, 64, 256, 1024, 4096, 16384], dtype=float)
INS_GRID = np.array([4, 16, 64, 256, 1024, 4096, 16384], dtype=float) * 1000.0

_SPECS_PER_APP = {"webserver": 150, "tpcc": 150, "tpch": 40, "rubis": 80, "webwork": 20}


def run(scale: float = 1.0, seed: int = 51) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig4",
        title="CDF of next-syscall distances (time and instruction count)",
    )
    key_probs = {}
    cdf_curves = {}
    for app in all_apps():
        rng = np.random.default_rng(seed)
        workload = make_workload(app)
        n = scaled(_SPECS_PER_APP[app], scale)
        specs = [workload.sample_request(rng, i) for i in range(n)]
        cdf_time, cdf_ins = next_syscall_distance_cdf(
            specs, rng, TIME_GRID_US, INS_GRID, samples_per_request=25
        )
        row_t = {"app": app, "axis": "time_us"}
        for grid_value, prob in zip(TIME_GRID_US, cdf_time):
            row_t[f"<= {int(grid_value)}"] = float(prob)
        result.rows.append(row_t)
        row_i = {"app": app, "axis": "kilo_ins"}
        for grid_value, prob in zip(INS_GRID, cdf_ins):
            row_i[f"<= {int(grid_value / 1000)}"] = float(prob)
        result.rows.append(row_i)
        key_probs[app] = (float(cdf_time[1]), float(np.interp(1000.0, TIME_GRID_US, cdf_time)))
        cdf_curves[app] = cdf_time
    result.notes.append(
        "\n"
        + format_series_plot(
            cdf_curves,
            width=56,
            height=10,
            title="cumulative probability vs next-syscall distance "
            "(log-spaced 4us..16ms)",
            x_labels=["4us", "16ms"],
        )
    )
    result.notes.append(
        "paper: P(next syscall within 16us) ~= 97% (web), 83% (tpch), 72% "
        "(rubis); measured: "
        + ", ".join(
            f"{app}={key_probs[app][0]:.0%}" for app in ("webserver", "tpch", "rubis")
        )
    )
    result.notes.append(
        "paper: P(within 1ms) ~= 82% (tpcc) and 81% (webwork); measured: "
        + ", ".join(f"{app}={key_probs[app][1]:.0%}" for app in ("tpcc", "webwork"))
    )
    return result
